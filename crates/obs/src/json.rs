//! Minimal, dependency-free JSON: string escaping for the writers and a
//! small recursive-descent parser for `sdem stats` / `sdem stats --check`.
//!
//! The parser accepts standard JSON (objects, arrays, strings with
//! escapes, numbers, booleans, null) and preserves object key order. It
//! exists so the CLI can validate and summarise the files this crate
//! writes without pulling in an external dependency; it is not a
//! general-purpose validator (e.g. it does not enforce UTF-16 surrogate
//! pairing in `\u` escapes).

use std::fmt;

/// Escapes `s` into `out` as JSON string *contents* (no quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a quoted, escaped JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for other kinds or a missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

/// What a validated metrics file contains (for `stats --check` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsCheck {
    /// Number of counters present.
    pub counters: usize,
    /// Number of histograms present.
    pub histograms: usize,
    /// Number of gauges present.
    pub gauges: usize,
}

/// Validates a metrics document written by
/// [`crate::registry::MetricsSnapshot::to_json`].
pub fn validate_metrics(doc: &Value) -> Result<MetricsCheck, String> {
    if doc.get("sdem_metrics").and_then(Value::as_u64) != Some(1) {
        return Err("missing or unsupported \"sdem_metrics\" version".into());
    }
    let counters = doc
        .get("counters")
        .and_then(Value::as_obj)
        .ok_or("missing \"counters\" object")?;
    for (name, value) in counters {
        value
            .as_u64()
            .ok_or_else(|| format!("counter \"{name}\" is not a non-negative integer"))?;
    }
    let histograms = doc
        .get("histograms")
        .and_then(Value::as_obj)
        .ok_or("missing \"histograms\" object")?;
    for (label, h) in histograms {
        let field = |key: &str| {
            h.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram \"{label}\": bad \"{key}\""))
        };
        let count = field("count")?;
        field("sum")?;
        let min = field("min")?;
        let max = field("max")?;
        let p50 = field("p50")?;
        let p90 = field("p90")?;
        let p99 = field("p99")?;
        if count == 0 {
            return Err(format!(
                "histogram \"{label}\": empty histograms are not exported"
            ));
        }
        if min > max || p50 > p90 || p90 > p99 || p99 > max {
            return Err(format!("histogram \"{label}\": non-monotonic summary"));
        }
        let buckets = h
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("histogram \"{label}\": missing \"buckets\""))?;
        let mut total = 0u64;
        for pair in buckets {
            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                format!("histogram \"{label}\": bucket entries must be [index, count]")
            })?;
            pair[0]
                .as_u64()
                .filter(|&i| i < crate::hist::BUCKETS as u64)
                .ok_or_else(|| format!("histogram \"{label}\": bad bucket index"))?;
            total += pair[1]
                .as_u64()
                .ok_or_else(|| format!("histogram \"{label}\": bad bucket count"))?;
        }
        if total != count {
            return Err(format!(
                "histogram \"{label}\": bucket counts sum to {total}, \"count\" says {count}"
            ));
        }
    }
    let gauges = doc
        .get("gauges")
        .and_then(Value::as_obj)
        .ok_or("missing \"gauges\" object")?;
    for (label, g) in gauges {
        let value = g
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("gauge \"{label}\": missing \"value\""))?;
        let bits = g
            .get("bits")
            .and_then(Value::as_str)
            .and_then(|s| s.strip_prefix("0x"))
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| format!("gauge \"{label}\": missing or bad \"bits\""))?;
        // `value` survives a JSON round trip only to ~17 significant
        // digits; `bits` is the exact payload. They must agree to the
        // printed precision.
        let exact = f64::from_bits(bits);
        if exact.is_finite() && (exact - value).abs() > exact.abs() * 1e-12 + 1e-300 {
            return Err(format!(
                "gauge \"{label}\": \"value\" {value} disagrees with \"bits\" {exact}"
            ));
        }
    }
    Ok(MetricsCheck {
        counters: counters.len(),
        histograms: histograms.len(),
        gauges: gauges.len(),
    })
}

/// What a validated trace file contains (for `stats --check` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Number of events (spans + instants).
    pub events: usize,
    /// Number of span events (with `dur_ns`).
    pub spans: usize,
}

/// Validates a JSONL trace written by [`crate::trace::drain_jsonl`].
pub fn validate_trace(text: &str) -> Result<TraceCheck, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty trace file")?;
    let header = parse(header).map_err(|e| format!("header: {e}"))?;
    if header.get("sdem_trace").and_then(Value::as_u64) != Some(1) {
        return Err("missing or unsupported \"sdem_trace\" version".into());
    }
    let declared = header
        .get("events")
        .and_then(Value::as_u64)
        .ok_or("header: missing \"events\" count")?;
    let mut events = 0usize;
    let mut spans = 0usize;
    let mut last_ts = 0u64;
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let event = parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing \"name\"", i + 2))?;
        event
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {}: missing \"tid\"", i + 2))?;
        let ts = event
            .get("ts_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {}: missing \"ts_ns\"", i + 2))?;
        if ts < last_ts {
            return Err(format!("line {}: timestamps are not sorted", i + 2));
        }
        last_ts = ts;
        if let Some(dur) = event.get("dur_ns") {
            dur.as_u64()
                .ok_or_else(|| format!("line {}: bad \"dur_ns\"", i + 2))?;
            spans += 1;
        }
        events += 1;
    }
    if events as u64 != declared {
        return Err(format!(
            "header declares {declared} events, file has {events}"
        ));
    }
    Ok(TraceCheck { events, spans })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\n\"y\"","d":true,"e":null}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn quoting_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}";
        let quoted = quote(original);
        assert_eq!(parse(&quoted).unwrap().as_str(), Some(original));
    }

    #[test]
    fn validates_trace_files() {
        let good = "{\"sdem_trace\":1,\"events\":2}\n\
                    {\"name\":\"a\",\"tid\":0,\"ts_ns\":5,\"dur_ns\":2}\n\
                    {\"name\":\"b\",\"tid\":1,\"ts_ns\":9}\n";
        assert_eq!(
            validate_trace(good),
            Ok(TraceCheck {
                events: 2,
                spans: 1
            })
        );
        assert!(validate_trace("{\"sdem_trace\":2,\"events\":0}\n").is_err());
        let miscounted = "{\"sdem_trace\":1,\"events\":3}\n\
                          {\"name\":\"a\",\"tid\":0,\"ts_ns\":5}\n";
        assert!(validate_trace(miscounted).is_err());
        let unsorted = "{\"sdem_trace\":1,\"events\":2}\n\
                        {\"name\":\"a\",\"tid\":0,\"ts_ns\":9}\n\
                        {\"name\":\"b\",\"tid\":0,\"ts_ns\":5}\n";
        assert!(validate_trace(unsorted).is_err());
    }
}
