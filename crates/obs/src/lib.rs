//! Zero-dependency observability for the `sdem` workspace.
//!
//! Three pieces, all behind **no-op defaults** so an uninstrumented run
//! is bit-identical and allocation-free:
//!
//! * [`registry`] — a process-global, lock-free metrics registry:
//!   fixed [`Counter`]s, labeled f64 [gauges](registry::set_gauge) and
//!   labeled log2 latency [histograms](hist::Histogram). Disabled sites
//!   cost one relaxed atomic load. Counters and histograms accumulate
//!   integers only (nanoseconds / nanojoules / counts), so aggregates
//!   are order-independent and deterministic at any thread count.
//! * [`trace`] — a structured event sink: [`span`]s and
//!   [instants](trace::instant) with monotonic timestamps, exported as
//!   JSONL. Tracing explicitly trades the allocation-free hot path for
//!   a timeline; disabled (default) it records nothing.
//! * [`json`] — the minimal JSON writer/parser backing the exports and
//!   `sdem stats --check`.
//!
//! # Instrumentation idiom
//!
//! ```
//! use sdem_obs::{registry, trace};
//!
//! fn solve_something() {
//!     let clock = registry::maybe_start(); // None when metrics are off
//!     let _span = trace::span("solve/example"); // None when tracing is off
//!     // … hot work, untouched …
//!     registry::record_elapsed("solve/example", clock);
//! }
//!
//! solve_something(); // both sinks disabled: two relaxed loads, nothing recorded
//! assert!(registry::snapshot().histograms.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::Histogram;
pub use registry::{Counter, MetricsSnapshot};
pub use trace::{span, Span};
