//! Structured event-trace sink: spans and instants with monotonic
//! timestamps, exported as JSONL.
//!
//! Tracing is an explicit opt-in (`sdem sweep --trace out.jsonl`) and,
//! unlike the metrics registry, buffers events behind a `Mutex` — the
//! trade is documented: enabling a trace gives up the allocation-free
//! hot path in exchange for a per-event timeline. When disabled
//! (default) every site is a single relaxed load and records nothing,
//! so untraced runs stay bit-identical and allocation-free.
//!
//! Export format (one JSON object per line):
//!
//! ```text
//! {"sdem_trace":1,"events":N}
//! {"name":"solve/online","tid":0,"ts_ns":12345,"dur_ns":678}
//! {"name":"trial/fault","tid":1,"ts_ns":99999}
//! ```
//!
//! `ts_ns` is nanoseconds since the process-wide monotonic anchor
//! ([`crate::registry::now_nanos`]); span lines carry `dur_ns`, instant
//! events omit it. `tid` is a small per-thread ordinal assigned in
//! first-event order.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::escape_into;
use crate::registry::now_nanos;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Site label, e.g. `"solve/online"`.
    pub name: &'static str,
    /// Small per-thread ordinal (first-event order).
    pub tid: u64,
    /// Nanoseconds since the process monotonic anchor.
    pub ts_ns: u64,
    /// Span duration; `None` for instant events.
    pub dur_ns: Option<u64>,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Relaxed);
}

/// Turns the trace sink on or off (off by default). Enabling pins the
/// monotonic anchor shared with the metrics registry.
pub fn set_enabled(on: bool) {
    if on {
        let _ = now_nanos();
    }
    TRACING.store(on, Relaxed);
}

/// Whether tracing is currently on (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    TRACING.load(Relaxed)
}

fn push(event: Event) {
    let mut buf = EVENTS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    buf.push(event);
}

/// Records an instant event. No-op (one relaxed load) when disabled.
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    push(Event {
        name,
        tid: TID.with(|t| *t),
        ts_ns: now_nanos(),
        dur_ns: None,
    });
}

/// An in-flight span; records one event with its duration on drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    ts_ns: u64,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        // Re-check: the sink may have been drained/disabled mid-span.
        if !enabled() {
            return;
        }
        push(Event {
            name: self.name,
            tid: TID.with(|t| *t),
            ts_ns: self.ts_ns,
            dur_ns: Some(self.start.elapsed().as_nanos() as u64),
        });
    }
}

/// Opens a span. Returns `None` (after one relaxed load) when disabled,
/// so the hot path never reads the clock.
#[inline]
pub fn span(name: &'static str) -> Option<Span> {
    if !enabled() {
        return None;
    }
    Some(Span {
        name,
        ts_ns: now_nanos(),
        start: Instant::now(),
    })
}

/// Number of buffered events.
pub fn len() -> usize {
    EVENTS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .len()
}

/// Drains the buffered events, returning them in a deterministic order:
/// sorted by `(ts_ns, tid, name)`. (Buffer order depends on thread
/// scheduling; the sort keys do not.)
pub fn drain() -> Vec<Event> {
    let mut events = std::mem::take(
        &mut *EVENTS
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()),
    );
    events.sort_by(|a, b| {
        (a.ts_ns, a.tid, a.name)
            .cmp(&(b.ts_ns, b.tid, b.name))
            .then(a.dur_ns.cmp(&b.dur_ns))
    });
    events
}

/// Drains the buffer and renders it as JSONL (header line first).
pub fn drain_jsonl() -> String {
    let events = drain();
    let mut out = String::new();
    let _ = writeln!(out, "{{\"sdem_trace\":1,\"events\":{}}}", events.len());
    for e in &events {
        out.push_str("{\"name\":\"");
        escape_into(e.name, &mut out);
        let _ = write!(out, "\",\"tid\":{},\"ts_ns\":{}", e.tid, e.ts_ns);
        if let Some(d) = e.dur_ns {
            let _ = write!(out, ",\"dur_ns\":{d}");
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace sink is process-global; serialise tests that toggle it.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sink_records_nothing() {
        let _guard = TRACE_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        set_enabled(false);
        let before = len();
        instant("test/instant");
        assert!(span("test/span").is_none());
        assert_eq!(len(), before);
    }

    #[test]
    fn spans_and_instants_round_trip_as_jsonl() {
        let _guard = TRACE_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        set_enabled(true);
        let _ = drain();
        {
            let _span = span("test/work");
            instant("test/mark");
        }
        let out = drain_jsonl();
        set_enabled(false);
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("{\"sdem_trace\":1,\"events\":2}"));
        let rest: Vec<&str> = lines.collect();
        assert_eq!(rest.len(), 2);
        assert!(rest
            .iter()
            .any(|l| l.contains("\"name\":\"test/mark\"") && !l.contains("dur_ns")));
        assert!(rest
            .iter()
            .any(|l| l.contains("\"name\":\"test/work\"") && l.contains("\"dur_ns\":")));
    }
}
