//! Fixed-bucket log2 histograms for latency distributions.
//!
//! Two flavours share one bucket layout:
//!
//! * [`Histogram`] — a plain value, owned by one worker thread. Recording
//!   is a couple of integer ops; merging is bucket-wise addition. The
//!   sweep engine keeps one per worker and merges them in worker-index
//!   order at join, so the aggregate is deterministic at any thread count.
//! * [`AtomicHistogram`] — the process-global flavour behind the
//!   [`crate::registry`]; every operation is a relaxed atomic, so it is
//!   lock-free and safe to hit from any thread.
//!
//! Bucket `b` covers values `v` with `bit_width(v) == b`, i.e. bucket 0
//! holds only 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds
//! 4–7, … up to bucket 64 for values ≥ 2^63. Percentile queries return
//! the inclusive upper bound of the bucket containing the requested rank
//! (exact count/sum/min/max are tracked separately).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 buckets: one per possible `u64::BITS - leading_zeros`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: `bit_width(v)`, so 0 → 0, 1 → 1, 2..=3 → 2, …
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the value a percentile query reports).
#[inline]
pub fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A plain (single-owner) log2 histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket-wise addition of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            *into += from;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts, indexed by [`bucket_of`].
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Upper bound of the bucket holding the sample at quantile `q` in
    /// `[0, 1]` (0 when the histogram is empty). `q = 0.5` is the median
    /// bucket, `q = 1.0` the maximum bucket; the exact max is [`Self::max`].
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(bucket).min(self.max);
            }
        }
        self.max
    }
}

/// A lock-free log2 histogram: the process-global registry's flavour.
///
/// All operations use relaxed atomics — the counts are statistical, not
/// synchronization points. [`AtomicHistogram::snapshot`] materialises a
/// plain [`Histogram`] for export.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram, usable in `static` position.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            counts: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed atomics throughout).
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Adds every sample of a plain histogram (the per-worker merge).
    pub fn merge_from(&self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (into, &from) in self.counts.iter().zip(other.counts.iter()) {
            if from != 0 {
                into.fetch_add(from, Relaxed);
            }
        }
        self.count.fetch_add(other.count, Relaxed);
        self.sum.fetch_add(other.sum, Relaxed);
        self.min.fetch_min(other.min, Relaxed);
        self.max.fetch_max(other.max, Relaxed);
    }

    /// Materialises the current contents as a plain [`Histogram`].
    ///
    /// The sample count is derived from the bucket values actually read,
    /// not the stored total, so a snapshot racing an in-flight
    /// [`record`](Self::record) still satisfies the exporter's invariant
    /// that the buckets sum to the count (relaxed atomics give no
    /// cross-field ordering). `min`/`max` are clamped consistent for the
    /// same reason.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        let mut derived = 0u64;
        for (into, from) in h.counts.iter_mut().zip(self.counts.iter()) {
            *into = from.load(Relaxed);
            derived += *into;
        }
        h.count = derived;
        h.sum = self.sum.load(Relaxed);
        h.min = self.min.load(Relaxed);
        h.max = self.max.load(Relaxed);
        if h.count > 0 && h.min > h.max {
            h.min = h.max;
        }
        h
    }

    /// Zeroes every bucket and summary statistic.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let hi = bucket_upper(b);
            assert_eq!(bucket_of(hi), b, "upper bound of bucket {b} maps back");
        }
    }

    #[test]
    fn record_merge_and_percentiles() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100u64 {
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.sum(), 5050);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        // The median sample (50) lives in bucket 6 (32..=63).
        assert_eq!(a.percentile(0.5), 63);
        // p100 is clamped to the exact max.
        assert_eq!(a.percentile(1.0), 100);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn atomic_matches_plain() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for v in [0u64, 1, 5, 17, 1000, 123_456_789] {
            atomic.record(v);
            plain.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.buckets(), plain.buckets());
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum(), plain.sum());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        atomic.reset();
        assert!(atomic.snapshot().is_empty());
    }
}
