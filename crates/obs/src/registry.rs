//! Process-global, lock-free metrics registry.
//!
//! The registry is a set of `static` atomics: a fixed array of named
//! [`Counter`]s, plus fixed-capacity tables of labeled log2 histograms
//! and f64 gauges. Everything is guarded by a single `enabled` flag that
//! defaults to **off**: a disabled instrumentation site costs one relaxed
//! atomic load and never reads a clock, allocates, or writes anything, so
//! the hot path stays allocation-free and bit-identical to an
//! uninstrumented build.
//!
//! Determinism: counters and histograms only ever *add* integers
//! (nanoseconds, nanojoules, event counts), so their totals are
//! order-independent — the same sweep records the same aggregate at any
//! thread count. Gauges are plain stores of `f64::to_bits` and are used
//! for exact values computed once, in deterministic order, after a sweep
//! merges its results (e.g. total energies summed over sorted trials).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

use crate::hist::{AtomicHistogram, Histogram};

/// Fixed set of process-wide event and quantity counters.
///
/// Quantities are integers so concurrent accumulation is exact and
/// order-independent: energies in nanojoules (`_nj`), times in
/// nanoseconds (`_ns`), everything else an event count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
#[non_exhaustive]
pub enum Counter {
    /// Trials started by the sweep engine.
    TrialsRun,
    /// Trials that ended in a quarantined fault.
    TrialsFaulted,
    /// Per-trial retry attempts after a resamplable failure.
    TrialsResampled,
    /// Solutions produced by the degraded-mode fallback chain.
    DegradedSolutions,
    /// Entries into the fallback chain (a primary solver failed).
    FallbackAttempts,
    /// Solver panics caught by the fallback chain or containment.
    SolverPanicsCaught,
    /// Sim-oracle cross-checks executed.
    OracleChecks,
    /// Sim-oracle divergences observed.
    OracleFailures,
    /// Energy-meter invocations (`simulate*` calls).
    MeterRuns,
    /// Memory sleep episodes summed over all metered schedules.
    MemorySleeps,
    /// Core sleep episodes summed over all metered schedules.
    CoreSleeps,
    /// Core dynamic energy, nanojoules.
    CoreDynamicNj,
    /// Core static (awake leakage) energy, nanojoules.
    CoreStaticNj,
    /// Core sleep/wake transition energy, nanojoules.
    CoreTransitionNj,
    /// Memory static (awake leakage) energy, nanojoules.
    MemoryStaticNj,
    /// Memory access (dynamic) energy, nanojoules.
    MemoryDynamicNj,
    /// Memory sleep/wake transition energy, nanojoules.
    MemoryTransitionNj,
    /// Total memory awake time, nanoseconds.
    MemoryAwakeNs,
    /// Total memory sleep time, nanoseconds.
    MemorySleepNs,
    /// Service requests admitted into the queue (`sdem serve`).
    RequestsAdmitted,
    /// Service requests shed because the queue was full.
    RequestsShed,
    /// Service requests dropped because their deadline expired in queue.
    RequestsExpired,
    /// Service requests answered with a typed protocol error.
    RequestsRejected,
    /// Solve-cache hits (canonicalized task-set key found).
    CacheHits,
    /// Solve-cache misses (cold solve performed).
    CacheMisses,
    /// Solve-cache evictions (capacity reached, oldest entry dropped).
    CacheEvictions,
    /// Bounded-core branch-and-bound search nodes expanded.
    BoundedNodesExpanded,
    /// Bounded-core branch-and-bound subtrees pruned (bound or
    /// feasibility cut before expansion).
    BoundedPruned,
    /// Bounded-core refine-tier local-search steps applied (moves and
    /// swaps that strictly improved the load balance).
    BoundedRefineImprovements,
    /// Serve worker-level panics contained by the supervisor; each one
    /// restarts the worker with a rebuilt workspace.
    ServeWorkerRestarts,
    /// Serve responses produced by the graceful-degradation tier
    /// (race-to-idle baseline under overload or deadline pressure).
    ServeDegradedResponses,
    /// Journaled responses replayed verbatim by `replay --resume`
    /// instead of being re-solved.
    ServeRecoveredSeqs,
    /// Dedicated core clusters allocated to heavy DAGs by the federated
    /// pipeline.
    DagClusters,
    /// DAG instances the federated pipeline rejected as infeasible.
    DagInfeasible,
}

/// Stable export names, indexed by `Counter as usize`.
const COUNTER_NAMES: &[&str] = &[
    "trials_run",
    "trials_faulted",
    "trials_resampled",
    "degraded_solutions",
    "fallback_attempts",
    "solver_panics_caught",
    "oracle_checks",
    "oracle_failures",
    "meter_runs",
    "memory_sleeps",
    "core_sleeps",
    "core_dynamic_nj",
    "core_static_nj",
    "core_transition_nj",
    "memory_static_nj",
    "memory_dynamic_nj",
    "memory_transition_nj",
    "memory_awake_ns",
    "memory_sleep_ns",
    "requests_admitted",
    "requests_shed",
    "requests_expired",
    "requests_rejected",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "bounded/nodes_expanded",
    "bounded/pruned",
    "bounded/refine_improvements",
    "serve/worker_restarts",
    "serve/degraded_responses",
    "serve/recovered_seqs",
    "dag/clusters",
    "dag/infeasible",
];

impl Counter {
    /// Stable snake_case name used in exported metrics JSON.
    pub fn name(self) -> &'static str {
        COUNTER_NAMES[self as usize]
    }
}

/// Maximum number of distinct histogram labels (first-come slots).
const MAX_HISTOGRAMS: usize = 32;
/// Maximum number of distinct gauge labels (first-come slots).
const MAX_GAUGES: usize = 32;

struct HistSlot {
    label: OnceLock<&'static str>,
    hist: AtomicHistogram,
}

struct GaugeSlot {
    label: OnceLock<&'static str>,
    bits: AtomicU64,
    set: AtomicBool,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COUNTERS: [AtomicU64; COUNTER_NAMES.len()] =
    [const { AtomicU64::new(0) }; COUNTER_NAMES.len()];
static HISTOGRAMS: [HistSlot; MAX_HISTOGRAMS] = [const {
    HistSlot {
        label: OnceLock::new(),
        hist: AtomicHistogram::new(),
    }
}; MAX_HISTOGRAMS];
static GAUGES: [GaugeSlot; MAX_GAUGES] = [const {
    GaugeSlot {
        label: OnceLock::new(),
        bits: AtomicU64::new(0),
        set: AtomicBool::new(false),
    }
}; MAX_GAUGES];
static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Turns metric recording on or off (off by default).
pub fn set_enabled(on: bool) {
    if on {
        // Pin the monotonic anchor before the first sample.
        let _ = ANCHOR.get_or_init(Instant::now);
    }
    ENABLED.store(on, Relaxed);
}

/// Whether metric recording is currently on (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Adds `n` to a counter. No-op (one relaxed load) when disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() && n != 0 {
        COUNTERS[counter as usize].fetch_add(n, Relaxed);
    }
}

/// Adds 1 to a counter. No-op (one relaxed load) when disabled.
#[inline]
pub fn incr(counter: Counter) {
    if enabled() {
        COUNTERS[counter as usize].fetch_add(1, Relaxed);
    }
}

/// Current value of a counter (reads even while disabled).
pub fn counter(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Relaxed)
}

/// Adds `joules` to an energy counter as whole nanojoules.
///
/// Non-finite and negative values are dropped — energy metering reports
/// only physical quantities, and the metrics layer must never panic.
#[inline]
pub fn add_joules(counter: Counter, joules: f64) {
    if enabled() && joules.is_finite() && joules > 0.0 {
        COUNTERS[counter as usize].fetch_add((joules * 1e9).round() as u64, Relaxed);
    }
}

/// Adds `seconds` to a time counter as whole nanoseconds.
#[inline]
pub fn add_seconds(counter: Counter, seconds: f64) {
    if enabled() && seconds.is_finite() && seconds > 0.0 {
        COUNTERS[counter as usize].fetch_add((seconds * 1e9).round() as u64, Relaxed);
    }
}

fn hist_slot(label: &'static str) -> Option<&'static AtomicHistogram> {
    for slot in &HISTOGRAMS {
        // `set` fails when another thread claimed the slot first; re-check
        // what actually landed there and move on when it is a different
        // label. A full table silently drops the sample — metrics must
        // never panic the host.
        let claimed = slot.label.get_or_init(|| label);
        if *claimed == label {
            return Some(&slot.hist);
        }
    }
    None
}

/// Records one sample into the histogram registered under `label`.
/// No-op when disabled or when all histogram slots are taken.
#[inline]
pub fn record_value(label: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    if let Some(h) = hist_slot(label) {
        h.record(value);
    }
}

/// Merges a locally accumulated histogram into the global one under
/// `label` (the per-worker deterministic merge at sweep join).
pub fn merge_histogram(label: &'static str, local: &Histogram) {
    if !enabled() || local.is_empty() {
        return;
    }
    if let Some(h) = hist_slot(label) {
        h.merge_from(local);
    }
}

/// Stores an exact `f64` value (by bits) under a gauge label.
pub fn set_gauge(label: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    for slot in &GAUGES {
        let claimed = slot.gauge_label(label);
        if claimed {
            slot.bits.store(value.to_bits(), Relaxed);
            slot.set.store(true, Relaxed);
            return;
        }
    }
}

impl GaugeSlot {
    fn gauge_label(&self, label: &'static str) -> bool {
        *self.label.get_or_init(|| label) == label
    }
}

/// Starts a latency measurement — `Some(Instant)` only when enabled, so
/// disabled sites never touch the clock.
#[inline]
pub fn maybe_start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records the elapsed nanoseconds since [`maybe_start`] under `label`.
#[inline]
pub fn record_elapsed(label: &'static str, since: Option<Instant>) {
    if let Some(start) = since {
        record_value(label, start.elapsed().as_nanos() as u64);
    }
}

/// Nanoseconds since the process-wide monotonic anchor (pinned on the
/// first [`set_enabled`]`(true)` or trace activation).
pub fn now_nanos() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Point-in-time copy of every registered metric, ready for export.
///
/// Counters appear in declaration order; histograms and gauges are
/// sorted by label, so the JSON rendering is deterministic regardless of
/// which thread registered a label first.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`Counter`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(label, histogram)` sorted by label; empty histograms omitted.
    pub histograms: Vec<(&'static str, Histogram)>,
    /// `(label, value)` sorted by label; unset gauges omitted.
    pub gauges: Vec<(&'static str, f64)>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as the `sdem_metrics` version-1 JSON
    /// document consumed by `sdem stats`.
    ///
    /// Counters are integers; each gauge carries both a decimal
    /// rendering and the exact `f64::to_bits` payload; each histogram
    /// exports its summary statistics (sample counts, saturating sum,
    /// exact min/max, log2-bucket percentiles) plus its non-empty
    /// `[bucket_index, count]` pairs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"sdem_metrics\": 1,\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {value}", crate::json::quote(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (label, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            // `{:e}` round-trips exactly for finite values; non-finite
            // gauges keep only their exact bits (NaN is not JSON).
            let decimal = if value.is_finite() {
                format!("{value:e}")
            } else {
                "0e0".to_string()
            };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"value\": {decimal}, \"bits\": \"{:#018x}\"}}",
                crate::json::quote(label),
                value.to_bits()
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (label, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                crate::json::quote(label),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
            );
            let mut first = true;
            for (bucket, &n) in h.buckets().iter().enumerate() {
                if n != 0 {
                    let sep = if first { "" } else { ", " };
                    let _ = write!(out, "{sep}[{bucket}, {n}]");
                    first = false;
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Snapshots every counter, histogram and gauge.
pub fn snapshot() -> MetricsSnapshot {
    let counters = COUNTER_NAMES
        .iter()
        .zip(COUNTERS.iter())
        .map(|(&name, value)| (name, value.load(Relaxed)))
        .collect();
    let mut histograms: Vec<(&'static str, Histogram)> = HISTOGRAMS
        .iter()
        .filter_map(|slot| {
            let label = slot.label.get()?;
            let h = slot.hist.snapshot();
            (!h.is_empty()).then_some((*label, h))
        })
        .collect();
    histograms.sort_by_key(|(label, _)| *label);
    let mut gauges: Vec<(&'static str, f64)> = GAUGES
        .iter()
        .filter_map(|slot| {
            let label = slot.label.get()?;
            slot.set
                .load(Relaxed)
                .then(|| (*label, f64::from_bits(slot.bits.load(Relaxed))))
        })
        .collect();
    gauges.sort_by_key(|(label, _)| *label);
    MetricsSnapshot {
        counters,
        histograms,
        gauges,
    }
}

/// Zeroes every counter, histogram and gauge value (labels stay
/// registered). Intended for test isolation and CLI start-of-run resets.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Relaxed);
    }
    for slot in &HISTOGRAMS {
        slot.hist.reset();
    }
    for slot in &GAUGES {
        slot.set.store(false, Relaxed);
        slot.bits.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_cover_every_variant() {
        // A wrong COUNTER_NAMES length would misname or panic on the
        // last variants; pin the mapping explicitly.
        assert_eq!(Counter::TrialsRun.name(), "trials_run");
        assert_eq!(Counter::MemorySleepNs.name(), "memory_sleep_ns");
        assert_eq!(Counter::CacheEvictions.name(), "cache_evictions");
        assert_eq!(
            Counter::BoundedRefineImprovements.name(),
            "bounded/refine_improvements"
        );
        assert_eq!(Counter::ServeWorkerRestarts.name(), "serve/worker_restarts");
        assert_eq!(
            Counter::ServeDegradedResponses.name(),
            "serve/degraded_responses"
        );
        assert_eq!(Counter::ServeRecoveredSeqs.name(), "serve/recovered_seqs");
        assert_eq!(Counter::DagClusters.name(), "dag/clusters");
        assert_eq!(Counter::DagInfeasible.name(), "dag/infeasible");
        assert_eq!(
            COUNTER_NAMES.len(),
            Counter::DagInfeasible as usize + 1,
            "COUNTER_NAMES must have one entry per Counter variant"
        );
    }

    // Tests in this crate share the process-global registry and the
    // harness runs them in parallel; serialise the ones that toggle it.
    static REGISTRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_registry_records_nothing() {
        let _guard = REGISTRY_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        set_enabled(false);
        let before = counter(Counter::TrialsRun);
        incr(Counter::TrialsRun);
        add(Counter::TrialsRun, 7);
        add_joules(Counter::CoreDynamicNj, 1.0);
        record_value("test/disabled", 5);
        set_gauge("test/disabled_gauge", 1.0);
        assert_eq!(counter(Counter::TrialsRun), before);
        assert!(maybe_start().is_none());
        let snap = snapshot();
        assert!(!snap.histograms.iter().any(|(l, _)| *l == "test/disabled"));
        assert!(!snap.gauges.iter().any(|(l, _)| *l == "test/disabled_gauge"));
    }

    #[test]
    fn enabled_registry_round_trips() {
        let _guard = REGISTRY_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        set_enabled(true);
        reset();
        incr(Counter::OracleChecks);
        add(Counter::MemorySleeps, 3);
        add_joules(Counter::CoreDynamicNj, 1.5); // 1.5e9 nJ
        record_value("test/latency", 100);
        record_value("test/latency", 200);
        set_gauge("test/energy_j", 42.5);
        let snap = snapshot();
        set_enabled(false);
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("oracle_checks"), 1);
        assert_eq!(get("memory_sleeps"), 3);
        assert_eq!(get("core_dynamic_nj"), 1_500_000_000);
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(l, _)| *l == "test/latency")
            .unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 300);
        let (_, g) = snap
            .gauges
            .iter()
            .find(|(l, _)| *l == "test/energy_j")
            .unwrap();
        assert_eq!(g.to_bits(), 42.5f64.to_bits());
        set_enabled(true);
        reset();
        set_enabled(false);
        assert!(snapshot().histograms.is_empty());
    }
}
