//! The shared-memory power model: leakage `α_m` plus a break-even time.

use sdem_types::{Joules, Time, Watts};

/// Power model of the shared main memory.
///
/// The memory draws `alpha_m` (leakage/refresh/standby — the paper folds all
/// static draw into one constant) whenever it is awake, and nothing while
/// asleep. One sleep/wake round trip costs the same energy as staying awake
/// idle for `break_even` (`ξ_m`), so sleeping a common-idle gap `g` is
/// profitable exactly when `g ≥ ξ_m`.
///
/// # Examples
///
/// ```
/// use sdem_power::MemoryPower;
/// use sdem_types::Time;
///
/// let mem = MemoryPower::dram_50nm();
/// assert_eq!(mem.alpha_m().value(), 4.0);
/// assert!(mem.sleep_is_profitable(Time::from_millis(50.0)));
/// assert!(!mem.sleep_is_profitable(Time::from_millis(30.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPower {
    alpha_m: Watts,
    break_even: Time,
    access_energy_per_cycle: f64,
}

impl MemoryPower {
    /// Creates a memory model with leakage power `alpha_m` and zero
    /// transition overhead.
    ///
    /// # Panics
    ///
    /// Panics if `alpha_m` is negative or non-finite.
    pub fn new(alpha_m: Watts) -> Self {
        assert!(
            alpha_m.is_finite() && alpha_m.value() >= 0.0,
            "memory static power must be finite and non-negative"
        );
        Self {
            alpha_m,
            break_even: Time::ZERO,
            access_energy_per_cycle: 0.0,
        }
    }

    /// The paper's default 50 nm DRAM: `α_m = 4 W`, `ξ_m = 40 ms`
    /// (the starred defaults of Table 4).
    pub fn dram_50nm() -> Self {
        Self::new(Watts::new(4.0)).with_break_even(Time::from_millis(40.0))
    }

    /// Returns a copy with the break-even time `ξ_m` set.
    ///
    /// # Panics
    ///
    /// Panics if `xi_m` is negative or non-finite.
    #[must_use]
    pub fn with_break_even(mut self, xi_m: Time) -> Self {
        assert!(
            xi_m.is_finite() && xi_m.value() >= 0.0,
            "break-even time must be finite and non-negative"
        );
        self.break_even = xi_m;
        self
    }

    /// Returns a copy with a different leakage power (for the Fig. 7a
    /// parameter sweep).
    ///
    /// # Panics
    ///
    /// Panics if `alpha_m` is negative or non-finite.
    #[must_use]
    pub fn with_alpha_m(self, alpha_m: Watts) -> Self {
        Self { alpha_m, ..self }
    }

    /// Returns a copy with per-cycle access (dynamic) energy set.
    ///
    /// The paper's SDEM objective deliberately excludes memory dynamic
    /// energy: every feasible schedule executes the same cycles, so the
    /// access bill is a *constant* that cannot change which schedule wins
    /// (a property the simulator tests assert). This knob exists to make
    /// absolute energy totals realistic when desired.
    ///
    /// # Panics
    ///
    /// Panics if `joules_per_cycle` is negative or non-finite.
    #[must_use]
    pub fn with_access_energy(mut self, joules_per_cycle: f64) -> Self {
        assert!(
            joules_per_cycle.is_finite() && joules_per_cycle >= 0.0,
            "access energy must be finite and non-negative"
        );
        self.access_energy_per_cycle = joules_per_cycle;
        self
    }

    /// Per-cycle access (dynamic) energy. Zero by default, matching the
    /// paper's model.
    #[inline]
    pub fn access_energy_per_cycle(&self) -> f64 {
        self.access_energy_per_cycle
    }

    /// Memory static (leakage) power `α_m`.
    #[inline]
    pub fn alpha_m(&self) -> Watts {
        self.alpha_m
    }

    /// Memory sleep-transition break-even time `ξ_m`.
    #[inline]
    pub fn break_even(&self) -> Time {
        self.break_even
    }

    /// Energy drawn while awake for `duration`.
    pub fn awake_energy(&self, duration: Time) -> Joules {
        self.alpha_m * duration
    }

    /// One sleep/wake round trip costs `α_m·ξ_m`.
    pub fn transition_energy(&self) -> Joules {
        self.alpha_m * self.break_even
    }

    /// `true` when sleeping a common-idle gap of length `gap` saves energy
    /// versus idling awake (`gap ≥ ξ_m`).
    pub fn sleep_is_profitable(&self, gap: Time) -> bool {
        gap >= self.break_even
    }

    /// The cheaper of sleeping through a gap (one transition) or idling
    /// awake through it. Non-positive gaps are free.
    pub fn best_gap_energy(&self, gap: Time) -> Joules {
        if gap.value() <= 0.0 {
            return Joules::ZERO;
        }
        self.awake_energy(gap).min(self.transition_energy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_preset_matches_table_4_defaults() {
        let mem = MemoryPower::dram_50nm();
        assert_eq!(mem.alpha_m(), Watts::new(4.0));
        assert!((mem.break_even().as_millis() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn awake_and_transition_energy() {
        let mem = MemoryPower::new(Watts::new(2.0)).with_break_even(Time::from_millis(10.0));
        assert!((mem.awake_energy(Time::from_secs(3.0)).value() - 6.0).abs() < 1e-12);
        assert!((mem.transition_energy().value() - 0.02).abs() < 1e-15);
    }

    #[test]
    fn profitability_threshold_is_break_even() {
        let mem = MemoryPower::new(Watts::new(2.0)).with_break_even(Time::from_millis(10.0));
        assert!(mem.sleep_is_profitable(Time::from_millis(10.0)));
        assert!(mem.sleep_is_profitable(Time::from_millis(10.1)));
        assert!(!mem.sleep_is_profitable(Time::from_millis(9.9)));
    }

    #[test]
    fn best_gap_energy_picks_minimum() {
        let mem = MemoryPower::new(Watts::new(2.0)).with_break_even(Time::from_millis(10.0));
        // Long gap: sleeping (0.02 J) beats idling (0.2 J).
        let long = mem.best_gap_energy(Time::from_millis(100.0));
        assert!((long.value() - 0.02).abs() < 1e-15);
        // Short gap: idling (0.01 J) beats sleeping (0.02 J).
        let short = mem.best_gap_energy(Time::from_millis(5.0));
        assert!((short.value() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn zero_break_even_makes_sleep_always_profitable() {
        let mem = MemoryPower::new(Watts::new(4.0));
        assert!(mem.sleep_is_profitable(Time::ZERO));
        assert_eq!(mem.transition_energy(), Joules::ZERO);
    }

    #[test]
    fn with_alpha_m_preserves_break_even() {
        let mem = MemoryPower::dram_50nm().with_alpha_m(Watts::new(8.0));
        assert_eq!(mem.alpha_m(), Watts::new(8.0));
        assert!((mem.break_even().as_millis() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn access_energy_defaults_to_zero_and_is_settable() {
        let mem = MemoryPower::dram_50nm();
        assert_eq!(mem.access_energy_per_cycle(), 0.0);
        let mem = mem.with_access_energy(1.5e-10);
        assert_eq!(mem.access_energy_per_cycle(), 1.5e-10);
        // Preserved through with_alpha_m.
        assert_eq!(
            mem.with_alpha_m(Watts::new(2.0)).access_energy_per_cycle(),
            1.5e-10
        );
    }

    #[test]
    #[should_panic(expected = "access energy")]
    fn rejects_negative_access_energy() {
        let _ = MemoryPower::dram_50nm().with_access_energy(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_alpha_m() {
        let _ = MemoryPower::new(Watts::new(-1.0));
    }

    #[test]
    #[should_panic(expected = "break-even")]
    fn rejects_negative_break_even() {
        let _ = MemoryPower::new(Watts::new(1.0)).with_break_even(Time::from_secs(-0.1));
    }
}
