//! Power and energy models for the SDEM problem.
//!
//! The paper models each homogeneous DVS core as
//! `P(s) = α + P_d(s)` with `P_d(s) = β·s^λ` (λ > 1), and the shared main
//! memory as a constant leakage draw `α_m` whenever it is awake. Mode
//! transitions (core or memory) cost energy expressed as a *break-even time*:
//! the idle-active duration whose energy equals one sleep/wake round trip.
//!
//! This crate provides:
//!
//! * [`CorePower`] — the core power curve, its energy helpers, and the three
//!   critical speeds the algorithms pivot on (`s_m`, task-clamped `s_0`,
//!   constrained `s_c` when the core break-even `ξ ≠ 0`);
//! * [`MemoryPower`] — memory leakage `α_m` and break-even `ξ_m`;
//! * [`Platform`] — a core model plus a memory model, with the joint
//!   *memory-associated* critical speed `s_1` of §5.2;
//! * [`PlatformBuilder`] — a validating, panic-free builder over both
//!   models (β > 0, λ > 1, non-negative powers and break-evens);
//! * device presets matching the paper's evaluation (§8.1.3): an ARM
//!   Cortex-A57 core and a 50 nm DRAM.
//!
//! # Examples
//!
//! ```
//! use sdem_power::{CorePower, MemoryPower, Platform};
//! use sdem_types::Speed;
//!
//! let core = CorePower::cortex_a57();
//! // The unconstrained critical speed of the A57 parameters is ~849 MHz.
//! let s_m = core.critical_speed_unclamped();
//! assert!((s_m.as_mhz() - 849.0).abs() < 1.0);
//!
//! let platform = Platform::new(core, MemoryPower::dram_50nm());
//! // Adding the 4 W memory pushes the joint critical speed above s_up,
//! // so s_1 saturates at 1900 MHz for low-density tasks.
//! let s1 = platform.memory_associated_critical_speed(Speed::from_mhz(100.0));
//! assert!((s1.as_mhz() - 1900.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod core_power;
mod memory_power;
mod platform;

pub use builder::{PlatformBuilder, PlatformError};
pub use core_power::CorePower;
pub use memory_power::MemoryPower;
pub use platform::Platform;
