//! A complete platform: homogeneous DVS cores plus one shared memory.

use sdem_types::{Cycles, Joules, Speed, Time};

use crate::{CorePower, MemoryPower, PlatformError};

/// The hardware the SDEM schedulers target: one [`CorePower`] model shared
/// by all (homogeneous) cores, and one [`MemoryPower`] model for the shared
/// main memory.
///
/// In the paper's unbounded model the number of physical cores never binds
/// (each task gets its own core), so the platform does not fix a core count;
/// experiment drivers that emulate a bounded machine (8 cores in §8) pass
/// the count separately.
///
/// # Examples
///
/// ```
/// use sdem_power::{CorePower, MemoryPower, Platform};
///
/// let platform = Platform::paper_defaults();
/// assert_eq!(platform.memory().alpha_m().value(), 4.0);
/// assert!((platform.core().max_speed().as_mhz() - 1900.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    core: CorePower,
    memory: MemoryPower,
}

impl Platform {
    /// Creates a platform from a core model and a memory model.
    pub fn new(core: CorePower, memory: MemoryPower) -> Self {
        Self { core, memory }
    }

    /// The paper's evaluation defaults: Cortex-A57 cores and a 4 W / 40 ms
    /// 50 nm DRAM (Table 4 starred values).
    pub fn paper_defaults() -> Self {
        Self::new(CorePower::cortex_a57(), MemoryPower::dram_50nm())
    }

    /// The core power model.
    #[inline]
    pub fn core(&self) -> &CorePower {
        &self.core
    }

    /// The memory power model.
    #[inline]
    pub fn memory(&self) -> &MemoryPower {
        &self.memory
    }

    /// Returns a copy with the core model replaced.
    #[must_use]
    pub fn with_core(mut self, core: CorePower) -> Self {
        self.core = core;
        self
    }

    /// Returns a copy with the memory model replaced.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryPower) -> Self {
        self.memory = memory;
        self
    }

    /// Checks every model parameter the schedulers differentiate on —
    /// `α`, `β`, `λ`, `ξ`, the speed range, `α_m`, `ξ_m`, and the access
    /// energy — rejecting NaN/∞ and out-of-range values with a typed
    /// [`PlatformError`].
    ///
    /// The component constructors assert most of these invariants, but
    /// their comparisons silently pass NaN/∞ in a few spots (an infinite
    /// `β`, or [`MemoryPower::with_alpha_m`] which validates nothing), so
    /// anything built from untrusted input — CLI flags, sweep configs —
    /// should be re-checked here before scheduling. One exception is
    /// deliberate: an **infinite maximum speed** is allowed, because the
    /// `CorePower::simple` test model uses it to mean "unbounded".
    pub fn validate(&self) -> Result<(), PlatformError> {
        let core = &self.core;
        let alpha = core.alpha().value();
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(PlatformError::NegativePower {
                field: "alpha",
                value: alpha,
            });
        }
        if !core.beta().is_finite() || core.beta() <= 0.0 {
            return Err(PlatformError::BetaNotPositive { beta: core.beta() });
        }
        if !core.lambda().is_finite() || core.lambda() <= 1.0 {
            return Err(PlatformError::LambdaNotAboveOne {
                lambda: core.lambda(),
            });
        }
        let xi = core.break_even();
        if !xi.value().is_finite() || xi.value() < 0.0 {
            return Err(PlatformError::NegativeBreakEven {
                field: "xi",
                millis: xi.as_millis(),
            });
        }
        let (min, max) = (core.min_speed(), core.max_speed());
        let range_ok = min.value().is_finite()
            && min.value() >= 0.0
            && !max.value().is_nan()
            && max.value() > min.value();
        if !range_ok {
            return Err(PlatformError::EmptySpeedRange {
                min_mhz: min.as_mhz(),
                max_mhz: max.as_mhz(),
            });
        }

        let memory = &self.memory;
        let alpha_m = memory.alpha_m().value();
        if !alpha_m.is_finite() || alpha_m < 0.0 {
            return Err(PlatformError::NegativePower {
                field: "alpha_m",
                value: alpha_m,
            });
        }
        let xi_m = memory.break_even();
        if !xi_m.value().is_finite() || xi_m.value() < 0.0 {
            return Err(PlatformError::NegativeBreakEven {
                field: "xi_m",
                millis: xi_m.as_millis(),
            });
        }
        let access = memory.access_energy_per_cycle();
        if !access.is_finite() || access < 0.0 {
            return Err(PlatformError::NegativeAccessEnergy { value: access });
        }
        Ok(())
    }

    /// The unclamped memory-associated critical speed of §5.2:
    /// `s_cm = ((α + α_m) / (β(λ−1)))^{1/λ}`, minimizing the energy of a
    /// single core *plus the memory* per unit work. Always `≥ s_m`.
    pub fn memory_associated_critical_speed_unclamped(&self) -> Speed {
        let joint = self.core.alpha().value() + self.memory.alpha_m().value();
        Speed::from_hz(
            (joint / (self.core.beta() * (self.core.lambda() - 1.0)))
                .powf(1.0 / self.core.lambda()),
        )
    }

    /// The task-clamped memory-associated critical speed:
    /// `s_1 = min(max(s_cm, s_f), s_up)`. Satisfies `s_1 ≥ s_0`.
    pub fn memory_associated_critical_speed(&self, filled_speed: Speed) -> Speed {
        self.memory_associated_critical_speed_unclamped()
            .max(filled_speed)
            .min(self.core.max_speed())
    }

    /// Energy of one core *and* the memory running `work` over `window`:
    /// `β·w^λ·L^{1−λ} + (α + α_m)·L`. This is the per-block integrand of
    /// the §5 objective when a single task determines the busy interval.
    pub fn joint_run_energy_over_window(&self, work: Cycles, window: Time) -> Joules {
        self.core.run_energy_over_window(work, window) + self.memory.awake_energy(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::Watts;

    #[test]
    fn joint_critical_speed_exceeds_core_critical_speed() {
        let p = Platform::paper_defaults();
        assert!(
            p.memory_associated_critical_speed_unclamped() > p.core().critical_speed_unclamped()
        );
    }

    #[test]
    fn a57_joint_speed_saturates_at_fmax() {
        // (0.310 + 4.0) W over the A57 curve gives s_cm ≈ 2043 MHz > 1900.
        let p = Platform::paper_defaults();
        let unclamped = p.memory_associated_critical_speed_unclamped();
        assert!((unclamped.as_mhz() - 2043.0).abs() < 2.0, "{unclamped}");
        let s1 = p.memory_associated_critical_speed(Speed::from_mhz(100.0));
        assert!((s1.as_mhz() - 1900.0).abs() < 1e-9);
    }

    #[test]
    fn s1_clamps_to_filled_speed_like_s0() {
        let core = CorePower::simple(4.0, 1.0, 3.0);
        let mem = MemoryPower::new(Watts::new(12.0));
        let p = Platform::new(core, mem);
        // s_cm = ((4+12)/2)^(1/3) = 2.
        assert!((p.memory_associated_critical_speed_unclamped().as_hz() - 2.0).abs() < 1e-12);
        // High-density task dominates.
        let sf = Speed::from_hz(5.0);
        assert_eq!(p.memory_associated_critical_speed(sf), sf);
    }

    #[test]
    fn joint_energy_is_core_plus_memory() {
        let core = CorePower::simple(1.0, 1.0, 3.0);
        let mem = MemoryPower::new(Watts::new(2.0));
        let p = Platform::new(core, mem);
        let w = Cycles::new(2.0);
        let l = Time::from_secs(1.0);
        // β w³ L⁻² + α L + α_m L = 8 + 1 + 2 = 11.
        assert!((p.joint_run_energy_over_window(w, l).value() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn s1_minimizes_joint_per_work_energy() {
        let core = CorePower::simple(4.0, 1.0, 3.0);
        let mem = MemoryPower::new(Watts::new(12.0));
        let p = Platform::new(core, mem);
        let s_cm = p.memory_associated_critical_speed_unclamped();
        let w = Cycles::new(3.0);
        let joint = |s: Speed| p.joint_run_energy_over_window(w, w / s).value();
        let e = joint(s_cm);
        for f in [0.9, 1.1] {
            assert!(joint(Speed::from_hz(s_cm.as_hz() * f)) > e);
        }
    }

    #[test]
    fn builders_replace_components() {
        let p = Platform::paper_defaults()
            .with_memory(MemoryPower::new(Watts::new(8.0)))
            .with_core(CorePower::simple(0.0, 1.0, 2.0));
        assert_eq!(p.memory().alpha_m(), Watts::new(8.0));
        assert!(p.core().is_alpha_zero());
    }

    #[test]
    fn validate_accepts_sane_platforms_including_unbounded_speed() {
        Platform::paper_defaults()
            .validate()
            .expect("paper defaults");
        // The simple() test model has an infinite max speed — allowed.
        Platform::new(
            CorePower::simple(1.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(2.0)),
        )
        .validate()
        .expect("unbounded test model");
    }

    #[test]
    fn validate_rejects_non_finite_parameters() {
        use crate::PlatformError;

        // with_alpha_m performs no checks of its own — validate() is the
        // net that catches a smuggled ∞/NaN.
        let p = Platform::paper_defaults()
            .with_memory(MemoryPower::dram_50nm().with_alpha_m(Watts::new(f64::INFINITY)));
        assert!(matches!(
            p.validate(),
            Err(PlatformError::NegativePower {
                field: "alpha_m",
                ..
            })
        ));

        let p = Platform::paper_defaults()
            .with_memory(MemoryPower::dram_50nm().with_alpha_m(Watts::new(f64::NAN)));
        assert!(matches!(
            p.validate(),
            Err(PlatformError::NegativePower { .. })
        ));

        // An infinite β slips past CorePower::new's comparisons.
        let p = Platform::paper_defaults().with_core(CorePower::simple(1.0, f64::INFINITY, 3.0));
        assert!(matches!(
            p.validate(),
            Err(PlatformError::BetaNotPositive { .. })
        ));
    }
}
