//! A validating builder for [`Platform`] — the fallible front door the
//! component constructors (`CorePower::new`, `MemoryPower::new`) panic
//! behind.
//!
//! Defaults are the paper's Table 4 starred values (Cortex-A57 cores,
//! 4 W / 40 ms DRAM), so `PlatformBuilder::new().build()` reproduces
//! [`Platform::paper_defaults`] and each setter overrides one knob.
//!
//! # Examples
//!
//! ```
//! use sdem_power::{Platform, PlatformBuilder, PlatformError};
//! use sdem_types::Time;
//!
//! # fn main() -> Result<(), PlatformError> {
//! let platform = PlatformBuilder::new()
//!     .memory_alpha_w(6.0)
//!     .memory_break_even(Time::from_millis(25.0))
//!     .build()?;
//! assert_eq!(platform.memory().alpha_m().value(), 6.0);
//!
//! // Validation errors come back as values, not panics:
//! let err = PlatformBuilder::new().lambda(1.0).build().unwrap_err();
//! assert!(matches!(err, PlatformError::LambdaNotAboveOne { .. }));
//! # Ok(())
//! # }
//! ```

use core::fmt;

use sdem_types::{Speed, Time, Watts};

use crate::{CorePower, MemoryPower, Platform};

/// Why a [`PlatformBuilder`] configuration is invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// `β ≤ 0` (or non-finite): the dynamic power curve would vanish or
    /// flip sign, breaking every critical-speed derivation.
    BetaNotPositive {
        /// The rejected value (mW/MHz^λ).
        beta: f64,
    },
    /// `λ ≤ 1` (or non-finite): convexity of `β·s^λ` is the premise of
    /// Theorems 2–4; at `λ ≤ 1` the critical speed is undefined.
    LambdaNotAboveOne {
        /// The rejected exponent.
        lambda: f64,
    },
    /// A static power (`α` or `α_m`) is negative or non-finite.
    NegativePower {
        /// Which knob: `"alpha"` or `"alpha_m"`.
        field: &'static str,
        /// The rejected value in the knob's unit.
        value: f64,
    },
    /// A break-even time (`ξ` or `ξ_m`) is negative or non-finite.
    NegativeBreakEven {
        /// Which knob: `"xi"` or `"xi_m"`.
        field: &'static str,
        /// The rejected value in milliseconds.
        millis: f64,
    },
    /// The speed range is empty (`min ≥ max`) or has a negative bound.
    EmptySpeedRange {
        /// Lower bound (MHz).
        min_mhz: f64,
        /// Upper bound (MHz).
        max_mhz: f64,
    },
    /// Per-cycle memory access energy is negative or non-finite.
    NegativeAccessEnergy {
        /// The rejected value (J/cycle).
        value: f64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BetaNotPositive { beta } => {
                write!(f, "dynamic coefficient β must be positive, got {beta}")
            }
            Self::LambdaNotAboveOne { lambda } => {
                write!(f, "power exponent λ must exceed 1, got {lambda}")
            }
            Self::NegativePower { field, value } => {
                write!(
                    f,
                    "static power {field} must be finite and ≥ 0, got {value}"
                )
            }
            Self::NegativeBreakEven { field, millis } => write!(
                f,
                "break-even time {field} must be finite and ≥ 0, got {millis} ms"
            ),
            Self::EmptySpeedRange { min_mhz, max_mhz } => write!(
                f,
                "speed range must satisfy 0 ≤ min < max, got {min_mhz}..{max_mhz} MHz"
            ),
            Self::NegativeAccessEnergy { value } => write!(
                f,
                "memory access energy must be finite and ≥ 0, got {value} J/cycle"
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Builds a [`Platform`] with full validation, starting from the paper's
/// Table 4 defaults.
///
/// # Examples
///
/// ```
/// use sdem_power::{PlatformBuilder, PlatformError};
/// use sdem_types::Time;
///
/// # fn main() -> Result<(), PlatformError> {
/// let platform = PlatformBuilder::new()
///     .memory_alpha_w(6.0)
///     .memory_break_even(Time::from_millis(25.0))
///     .build()?;
/// assert_eq!(platform.memory().alpha_m().value(), 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformBuilder {
    alpha_mw: f64,
    beta_mw_per_mhz_lambda: f64,
    lambda: f64,
    min_mhz: f64,
    max_mhz: f64,
    xi_ms: f64,
    alpha_m_w: f64,
    xi_m_ms: f64,
    access_energy: f64,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlatformBuilder {
    /// The paper's defaults: Cortex-A57 (`α = 310 mW`,
    /// `β = 2.53·10⁻⁷ mW/MHz³`, `λ = 3`, 700–1900 MHz, `ξ = 0`) and 50 nm
    /// DRAM (`α_m = 4 W`, `ξ_m = 40 ms`).
    pub fn new() -> Self {
        Self {
            alpha_mw: 310.0,
            beta_mw_per_mhz_lambda: 2.53e-7,
            lambda: 3.0,
            min_mhz: 700.0,
            max_mhz: 1900.0,
            xi_ms: 0.0,
            alpha_m_w: 4.0,
            xi_m_ms: 40.0,
            access_energy: 0.0,
        }
    }

    /// Core static power `α` in milliwatts.
    #[must_use]
    pub fn alpha_mw(mut self, alpha_mw: f64) -> Self {
        self.alpha_mw = alpha_mw;
        self
    }

    /// Dynamic coefficient `β` in mW/MHz^λ (the paper's unit).
    #[must_use]
    pub fn beta_mw_per_mhz_lambda(mut self, beta: f64) -> Self {
        self.beta_mw_per_mhz_lambda = beta;
        self
    }

    /// Dynamic power exponent `λ` (must exceed 1).
    #[must_use]
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// DVS frequency range in MHz.
    #[must_use]
    pub fn speed_range_mhz(mut self, min_mhz: f64, max_mhz: f64) -> Self {
        self.min_mhz = min_mhz;
        self.max_mhz = max_mhz;
        self
    }

    /// Core sleep break-even time `ξ`.
    #[must_use]
    pub fn core_break_even(mut self, xi: Time) -> Self {
        self.xi_ms = xi.as_millis();
        self
    }

    /// Memory static (leakage) power `α_m` in watts.
    #[must_use]
    pub fn memory_alpha_w(mut self, alpha_m_w: f64) -> Self {
        self.alpha_m_w = alpha_m_w;
        self
    }

    /// Memory sleep break-even time `ξ_m`.
    #[must_use]
    pub fn memory_break_even(mut self, xi_m: Time) -> Self {
        self.xi_m_ms = xi_m.as_millis();
        self
    }

    /// Per-cycle memory access energy in joules (0 = the paper's model).
    #[must_use]
    pub fn memory_access_energy(mut self, joules_per_cycle: f64) -> Self {
        self.access_energy = joules_per_cycle;
        self
    }

    /// Validates the configuration and builds the [`Platform`].
    ///
    /// # Errors
    ///
    /// The first [`PlatformError`] found; unlike the component
    /// constructors, this never panics.
    pub fn build(self) -> Result<Platform, PlatformError> {
        if !(self.beta_mw_per_mhz_lambda.is_finite() && self.beta_mw_per_mhz_lambda > 0.0) {
            return Err(PlatformError::BetaNotPositive {
                beta: self.beta_mw_per_mhz_lambda,
            });
        }
        if !(self.lambda.is_finite() && self.lambda > 1.0) {
            return Err(PlatformError::LambdaNotAboveOne {
                lambda: self.lambda,
            });
        }
        if !(self.alpha_mw.is_finite() && self.alpha_mw >= 0.0) {
            return Err(PlatformError::NegativePower {
                field: "alpha",
                value: self.alpha_mw,
            });
        }
        if !(self.alpha_m_w.is_finite() && self.alpha_m_w >= 0.0) {
            return Err(PlatformError::NegativePower {
                field: "alpha_m",
                value: self.alpha_m_w,
            });
        }
        if !(self.xi_ms.is_finite() && self.xi_ms >= 0.0) {
            return Err(PlatformError::NegativeBreakEven {
                field: "xi",
                millis: self.xi_ms,
            });
        }
        if !(self.xi_m_ms.is_finite() && self.xi_m_ms >= 0.0) {
            return Err(PlatformError::NegativeBreakEven {
                field: "xi_m",
                millis: self.xi_m_ms,
            });
        }
        if !(self.min_mhz.is_finite() && self.min_mhz >= 0.0 && self.max_mhz > self.min_mhz) {
            return Err(PlatformError::EmptySpeedRange {
                min_mhz: self.min_mhz,
                max_mhz: self.max_mhz,
            });
        }
        if !(self.access_energy.is_finite() && self.access_energy >= 0.0) {
            return Err(PlatformError::NegativeAccessEnergy {
                value: self.access_energy,
            });
        }

        let beta_si = self.beta_mw_per_mhz_lambda * 1e-3 / 1e6f64.powf(self.lambda);
        let core = CorePower::new(
            Watts::from_milliwatts(self.alpha_mw),
            beta_si,
            self.lambda,
            Speed::from_mhz(self.min_mhz),
            Speed::from_mhz(self.max_mhz),
        )
        .with_break_even(Time::from_millis(self.xi_ms));
        let memory = MemoryPower::new(Watts::new(self.alpha_m_w))
            .with_break_even(Time::from_millis(self.xi_m_ms))
            .with_access_energy(self.access_energy);
        Ok(Platform::new(core, memory))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_paper_platform() {
        let built = PlatformBuilder::new().build().unwrap();
        assert_eq!(built, Platform::paper_defaults());
    }

    #[test]
    fn every_knob_reaches_the_platform() {
        let p = PlatformBuilder::new()
            .alpha_mw(100.0)
            .beta_mw_per_mhz_lambda(1.0e-7)
            .lambda(2.5)
            .speed_range_mhz(200.0, 1000.0)
            .core_break_even(Time::from_millis(5.0))
            .memory_alpha_w(2.0)
            .memory_break_even(Time::from_millis(15.0))
            .memory_access_energy(1e-10)
            .build()
            .unwrap();
        assert!((p.core().alpha().value() - 0.1).abs() < 1e-12);
        assert!((p.core().lambda() - 2.5).abs() < 1e-12);
        assert!((p.core().min_speed().as_mhz() - 200.0).abs() < 1e-9);
        assert!((p.core().break_even().as_millis() - 5.0).abs() < 1e-9);
        assert!((p.memory().alpha_m().value() - 2.0).abs() < 1e-12);
        assert!((p.memory().break_even().as_millis() - 15.0).abs() < 1e-9);
        assert!((p.memory().access_energy_per_cycle() - 1e-10).abs() < 1e-20);
    }

    #[test]
    fn rejects_each_invalid_field() {
        use PlatformError as E;
        let b = PlatformBuilder::new;
        assert!(matches!(
            b().beta_mw_per_mhz_lambda(0.0).build(),
            Err(E::BetaNotPositive { .. })
        ));
        assert!(matches!(
            b().beta_mw_per_mhz_lambda(f64::NAN).build(),
            Err(E::BetaNotPositive { .. })
        ));
        assert!(matches!(
            b().lambda(1.0).build(),
            Err(E::LambdaNotAboveOne { .. })
        ));
        assert!(matches!(
            b().alpha_mw(-1.0).build(),
            Err(E::NegativePower { field: "alpha", .. })
        ));
        assert!(matches!(
            b().memory_alpha_w(f64::INFINITY).build(),
            Err(E::NegativePower {
                field: "alpha_m",
                ..
            })
        ));
        assert!(matches!(
            b().core_break_even(Time::from_millis(-1.0)).build(),
            Err(E::NegativeBreakEven { field: "xi", .. })
        ));
        assert!(matches!(
            b().memory_break_even(Time::from_millis(-1.0)).build(),
            Err(E::NegativeBreakEven { field: "xi_m", .. })
        ));
        assert!(matches!(
            b().speed_range_mhz(1900.0, 700.0).build(),
            Err(E::EmptySpeedRange { .. })
        ));
        assert!(matches!(
            b().memory_access_energy(-1e-12).build(),
            Err(E::NegativeAccessEnergy { .. })
        ));
    }

    #[test]
    fn errors_display_the_offending_value() {
        let err = PlatformBuilder::new().lambda(0.5).build().unwrap_err();
        assert!(err.to_string().contains("0.5"));
        let err = PlatformBuilder::new()
            .speed_range_mhz(5.0, 5.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("5"));
    }
}
