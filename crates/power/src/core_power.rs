//! The DVS core power model `P(s) = α + β·s^λ`.

use sdem_types::{Cycles, Joules, Speed, Time, Watts};

/// Power model of one homogeneous DVS core.
///
/// * `alpha` — static power `α`; when zero the core is free while idle
///   (the paper's `α = 0` model), otherwise idle cores should sleep;
/// * `beta`, `lambda` — the dynamic power curve `P_d(s) = β·s^λ`, `λ > 1`;
/// * `min_speed`, `max_speed` — the platform frequency range (`s_up` is
///   `max_speed`; `min_speed` is informational for validation);
/// * `break_even` — the core's sleep-transition break-even time `ξ`.
///
/// All values are stored in SI units; use
/// [`CorePower::from_paper_units`] to enter the paper's mW/MHz numbers.
///
/// # Examples
///
/// ```
/// use sdem_power::CorePower;
/// use sdem_types::Speed;
///
/// let core = CorePower::cortex_a57();
/// let p = core.power(Speed::from_mhz(1900.0));
/// // ~0.31 W static + ~1.74 W dynamic at fmax.
/// assert!((p.value() - 2.045).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePower {
    alpha: Watts,
    beta: f64,
    lambda: f64,
    min_speed: Speed,
    max_speed: Speed,
    break_even: Time,
}

impl CorePower {
    /// Creates a core model from SI quantities. `beta` is in `W / Hz^λ`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 1`, `beta <= 0`, `alpha < 0`, or the speed range
    /// is empty/negative.
    pub fn new(alpha: Watts, beta: f64, lambda: f64, min_speed: Speed, max_speed: Speed) -> Self {
        assert!(lambda > 1.0, "power exponent λ must exceed 1");
        assert!(beta > 0.0, "dynamic coefficient β must be positive");
        assert!(alpha.value() >= 0.0, "static power α must be non-negative");
        assert!(
            min_speed.value() >= 0.0 && max_speed > min_speed,
            "speed range must be non-empty and non-negative"
        );
        Self {
            alpha,
            beta,
            lambda,
            min_speed,
            max_speed,
            break_even: Time::ZERO,
        }
    }

    /// Creates a core model from the paper's customary units:
    /// `beta_mw_per_mhz_lambda` in mW/MHz^λ, `alpha_mw` in mW, frequencies
    /// in MHz.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CorePower::new`].
    pub fn from_paper_units(
        alpha_mw: f64,
        beta_mw_per_mhz_lambda: f64,
        lambda: f64,
        min_mhz: f64,
        max_mhz: f64,
    ) -> Self {
        // mW → W is 1e-3; each MHz^λ in the denominator is (1e6)^λ Hz^λ.
        let beta_si = beta_mw_per_mhz_lambda * 1e-3 / 1e6f64.powf(lambda);
        Self::new(
            Watts::from_milliwatts(alpha_mw),
            beta_si,
            lambda,
            Speed::from_mhz(min_mhz),
            Speed::from_mhz(max_mhz),
        )
    }

    /// The ARM Cortex-A57 parameters used in the paper's evaluation
    /// (§8.1.3): `β = 2.53·10⁻⁷ mW/MHz³`, `α = 310 mW`, `λ = 3`,
    /// frequency range 700–1900 MHz.
    pub fn cortex_a57() -> Self {
        Self::from_paper_units(310.0, 2.53e-7, 3.0, 700.0, 1900.0)
    }

    /// A dimensionless test model (`α`, `β`, `λ` given directly, unbounded
    /// speed range) convenient for unit tests and analytical cross-checks.
    pub fn simple(alpha: f64, beta: f64, lambda: f64) -> Self {
        Self::new(
            Watts::new(alpha),
            beta,
            lambda,
            Speed::ZERO,
            Speed::from_hz(f64::INFINITY),
        )
    }

    /// Returns a copy with the core break-even time `ξ` set.
    ///
    /// # Panics
    ///
    /// Panics if `xi` is negative or non-finite.
    #[must_use]
    pub fn with_break_even(mut self, xi: Time) -> Self {
        assert!(
            xi.is_finite() && xi.value() >= 0.0,
            "break-even time must be finite and non-negative"
        );
        self.break_even = xi;
        self
    }

    /// Returns a copy with a different maximum speed `s_up`.
    ///
    /// # Panics
    ///
    /// Panics if `s_up` does not exceed the minimum speed.
    #[must_use]
    pub fn with_max_speed(mut self, s_up: Speed) -> Self {
        assert!(s_up > self.min_speed, "s_up must exceed the minimum speed");
        self.max_speed = s_up;
        self
    }

    /// Static power `α`.
    #[inline]
    pub fn alpha(&self) -> Watts {
        self.alpha
    }

    /// `true` if the static power is exactly zero (the `α = 0` model).
    #[inline]
    pub fn is_alpha_zero(&self) -> bool {
        self.alpha.value() == 0.0
    }

    /// Dynamic coefficient `β` in `W / Hz^λ`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Power exponent `λ`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Minimum platform speed.
    #[inline]
    pub fn min_speed(&self) -> Speed {
        self.min_speed
    }

    /// Maximum platform speed `s_up`.
    #[inline]
    pub fn max_speed(&self) -> Speed {
        self.max_speed
    }

    /// Core sleep-transition break-even time `ξ`.
    #[inline]
    pub fn break_even(&self) -> Time {
        self.break_even
    }

    /// Dynamic power `P_d(s) = β·s^λ`.
    pub fn dynamic_power(&self, speed: Speed) -> Watts {
        Watts::new(self.beta * speed.as_hz().powf(self.lambda))
    }

    /// Total power while executing at `speed`: `α + β·s^λ`.
    pub fn power(&self, speed: Speed) -> Watts {
        self.alpha + self.dynamic_power(speed)
    }

    /// Energy to execute `work` at constant `speed` (static + dynamic):
    /// `(α + β·s^λ)·(w/s)`.
    pub fn run_energy_at_speed(&self, work: Cycles, speed: Speed) -> Joules {
        self.power(speed) * (work / speed)
    }

    /// Energy to execute `work` stretched exactly over a window of length
    /// `window`: `β·w^λ·L^{1−λ} + α·L`. This is the form every energy
    /// equation in the paper is written in.
    pub fn run_energy_over_window(&self, work: Cycles, window: Time) -> Joules {
        self.dynamic_run_energy(work, window) + self.alpha * window
    }

    /// Dynamic-only energy over a window: `β·w^λ·L^{1−λ}`.
    pub fn dynamic_run_energy(&self, work: Cycles, window: Time) -> Joules {
        if work.value() == 0.0 {
            return Joules::ZERO;
        }
        Joules::new(
            self.beta * work.value().powf(self.lambda) * window.as_secs().powf(1.0 - self.lambda),
        )
    }

    /// One core sleep/wake round trip costs `α·ξ`.
    pub fn transition_energy(&self) -> Joules {
        self.alpha * self.break_even
    }

    /// The cheaper of sleeping through an idle gap (one round trip, `α·ξ`)
    /// or idling awake through it (`α·g`). Non-positive gaps are free.
    pub fn best_gap_energy(&self, gap: Time) -> Joules {
        if gap.value() <= 0.0 {
            return Joules::ZERO;
        }
        (self.alpha * gap).min(self.transition_energy())
    }

    /// The unconstrained critical speed
    /// `s_m = (α / (β(λ−1)))^{1/λ}` minimizing per-work energy
    /// `(α + β s^λ)·w/s` (Irani et al.). Zero when `α = 0`.
    pub fn critical_speed_unclamped(&self) -> Speed {
        Speed::from_hz(
            (self.alpha.value() / (self.beta * (self.lambda - 1.0))).powf(1.0 / self.lambda),
        )
    }

    /// The task-clamped critical speed of §4.2:
    /// `s_0 = min(max(s_m, s_f), s_up)` where `s_f` is the task's filled
    /// speed. Guarantees `s_f ≤ s_0 ≤ s_up` whenever `s_f ≤ s_up`.
    pub fn critical_speed(&self, filled_speed: Speed) -> Speed {
        self.critical_speed_unclamped()
            .max(filled_speed)
            .min(self.max_speed)
    }

    /// The constrained critical speed of §7 for non-zero core break-even
    /// `ξ`: running at `s_m` is only worthwhile when the resulting idle tail
    /// `|I| − w/min(s_m, s_up)` is at least `ξ`; otherwise the task should
    /// simply fill its window (`s_c = s_f`).
    ///
    /// `interval` is the maximal interval `|I|` of the task set and
    /// `work`/`filled_speed` describe the task.
    pub fn constrained_critical_speed(
        &self,
        work: Cycles,
        filled_speed: Speed,
        interval: Time,
    ) -> Speed {
        let s_m = self.critical_speed_unclamped();
        let run = work / s_m.min(self.max_speed);
        if interval - run >= self.break_even {
            self.critical_speed(filled_speed)
        } else {
            filled_speed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn paper_unit_conversion() {
        let core = CorePower::cortex_a57();
        // P_d(1000 MHz) = 2.53e-7 mW/MHz³ · 1000³ MHz³ = 253 mW.
        let pd = core.dynamic_power(Speed::from_mhz(1000.0));
        assert!(close(pd.value(), 0.253, 1e-9), "{pd}");
        assert!(close(core.alpha().value(), 0.310, 1e-12));
        assert_eq!(core.lambda(), 3.0);
        assert!(close(core.min_speed().as_mhz(), 700.0, 1e-12));
        assert!(close(core.max_speed().as_mhz(), 1900.0, 1e-12));
    }

    #[test]
    fn critical_speed_matches_closed_form() {
        let core = CorePower::cortex_a57();
        // s_m³ = α / (2β)  ⇒  s_m = (0.310 / (2 · β_SI))^(1/3).
        let beta_si: f64 = 2.53e-7 * 1e-3 / 1e18;
        let expected = (0.310 / (2.0 * beta_si)).powf(1.0 / 3.0);
        assert!(close(
            core.critical_speed_unclamped().as_hz(),
            expected,
            1e-12
        ));
        // ≈ 849 MHz, inside the A57 range.
        assert!((core.critical_speed_unclamped().as_mhz() - 849.0).abs() < 1.0);
    }

    #[test]
    fn critical_speed_minimizes_per_work_energy() {
        let core = CorePower::simple(4.0, 1.0, 3.0);
        let s_m = core.critical_speed_unclamped();
        let w = Cycles::new(10.0);
        let e_at = |s: f64| core.run_energy_at_speed(w, Speed::from_hz(s)).value();
        let e_m = e_at(s_m.as_hz());
        for ds in [0.9, 0.95, 1.05, 1.1] {
            assert!(
                e_at(s_m.as_hz() * ds) > e_m,
                "not minimal at s_m, factor {ds}"
            );
        }
    }

    #[test]
    fn critical_speed_clamping() {
        let core = CorePower::cortex_a57();
        let s_m = core.critical_speed_unclamped();
        // Low-density task: clamp up to s_m.
        assert_eq!(core.critical_speed(Speed::from_mhz(100.0)), s_m);
        // High-density task: clamp to filled speed.
        let sf = Speed::from_mhz(1500.0);
        assert_eq!(core.critical_speed(sf), sf);
        // Density above s_up: clamp to s_up.
        assert_eq!(
            core.critical_speed(Speed::from_mhz(2500.0)),
            core.max_speed()
        );
    }

    #[test]
    fn alpha_zero_has_zero_critical_speed() {
        let core = CorePower::simple(0.0, 1.0, 3.0);
        assert!(core.is_alpha_zero());
        assert_eq!(core.critical_speed_unclamped(), Speed::ZERO);
        // s_0 degenerates to the filled speed.
        let sf = Speed::from_hz(5.0);
        assert_eq!(core.critical_speed(sf), sf);
    }

    #[test]
    fn run_energy_forms_agree() {
        let core = CorePower::simple(2.0, 0.5, 3.0);
        let w = Cycles::new(6.0);
        let s = Speed::from_hz(3.0);
        let window = w / s;
        let a = core.run_energy_at_speed(w, s);
        let b = core.run_energy_over_window(w, window);
        assert!(close(a.value(), b.value(), 1e-12));
        // Closed form: β w³ L⁻² + α L with L = 2: 0.5·216/4 + 2·2 = 31.
        assert!(close(a.value(), 31.0, 1e-12));
    }

    #[test]
    fn zero_work_costs_only_static() {
        let core = CorePower::simple(2.0, 0.5, 3.0);
        let e = core.run_energy_over_window(Cycles::new(0.0), Time::from_secs(3.0));
        assert!(close(e.value(), 6.0, 1e-12));
        assert_eq!(
            core.dynamic_run_energy(Cycles::new(0.0), Time::from_secs(3.0)),
            Joules::ZERO
        );
    }

    #[test]
    fn transition_energy_is_alpha_xi() {
        let core = CorePower::simple(2.0, 1.0, 3.0).with_break_even(Time::from_secs(0.25));
        assert!(close(core.transition_energy().value(), 0.5, 1e-12));
        assert_eq!(core.break_even(), Time::from_secs(0.25));
    }

    #[test]
    fn constrained_critical_speed_cases() {
        // α = 4, β = 1, λ = 3 ⇒ s_m = 2^(1/3) ≈ 1.26.
        let xi = Time::from_secs(1.0);
        let core = CorePower::simple(4.0, 1.0, 3.0).with_break_even(xi);
        let s_m = core.critical_speed_unclamped();
        let w = Cycles::new(2.0);
        let interval = Time::from_secs(10.0);
        let s_f = w / interval;
        // Tail at s_m: 10 − 2/1.26 ≈ 8.4 ≥ ξ ⇒ use critical speed.
        assert_eq!(core.constrained_critical_speed(w, s_f, interval), s_m);
        // Short interval: tail < ξ ⇒ fill the window.
        let short = Time::from_secs(2.0);
        let s_f_short = w / short;
        assert_eq!(
            core.constrained_critical_speed(w, s_f_short, short),
            s_f_short
        );
    }

    #[test]
    fn with_max_speed_adjusts_s_up() {
        let core = CorePower::simple(4.0, 1.0, 3.0).with_max_speed(Speed::from_hz(1.0));
        // s_m ≈ 1.26 > s_up ⇒ clamp to s_up.
        assert_eq!(
            core.critical_speed(Speed::from_hz(0.1)),
            Speed::from_hz(1.0)
        );
    }

    #[test]
    #[should_panic(expected = "λ must exceed 1")]
    fn rejects_lambda_at_most_one() {
        let _ = CorePower::simple(1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "β must be positive")]
    fn rejects_nonpositive_beta() {
        let _ = CorePower::simple(1.0, 0.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_alpha() {
        let _ = CorePower::simple(-1.0, 1.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "break-even")]
    fn rejects_negative_break_even() {
        let _ = CorePower::simple(1.0, 1.0, 3.0).with_break_even(Time::from_secs(-1.0));
    }
}
