//! Deterministic, dependency-free randomness for the SDEM workspace.
//!
//! The workload generators and the parallel sweep engine both need
//! reproducible random streams, and the build must work without network
//! access, so this crate vendors the two standard pieces the workspace
//! relies on instead of pulling `rand`/`rand_chacha`:
//!
//! * [`ChaCha8Rng`] — a ChaCha stream cipher used as a PRNG (8 rounds, the
//!   same construction `rand_chacha` uses), seeded from a single `u64`
//!   through [`SplitMix64`]. Statistically strong, fast, and — crucially
//!   for the sweep engine — *seekable by construction*: independent seeds
//!   give independent streams with no correlations.
//! * [`SplitMix64`] — the standard 64-bit finalizer-based generator, used
//!   for seed derivation (`(grid_seed, trial_index) → per-trial seed`).
//!
//! The [`Rng`]/[`SeedableRng`] traits intentionally mirror the subset of
//! the `rand` API the workspace uses (`seed_from_u64`, `gen_range` over
//! `f64`/integer ranges, `gen_bool`), so call sites read identically.
//!
//! # Examples
//!
//! ```
//! use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};
//!
//! let mut a = ChaCha8Rng::seed_from_u64(7);
//! let mut b = ChaCha8Rng::seed_from_u64(7);
//! let xs: Vec<f64> = (0..4).map(|_| a.gen_range(0.0..1.0)).collect();
//! let ys: Vec<f64> = (0..4).map(|_| b.gen_range(0.0..1.0)).collect();
//! assert_eq!(xs, ys);
//! assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The minimal random-source interface the workspace consumes.
pub trait Rng {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (see [`SampleRange`] for the
    /// supported range types).
    ///
    /// # Panics
    ///
    /// Panics on an empty range, like `rand`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen_f64() < p
    }
}

/// A range that can be sampled uniformly by an [`Rng`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty f64 range");
        let u = rng.gen_f64();
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample an inverted f64 range");
        // 53-bit uniform over [0, 1] inclusive of both endpoints.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Uniform integer below `n` by rejection (no modulo bias).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Reject the top partial copy of [0, n) inside [0, 2^64).
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty integer range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample an inverted integer range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u32, u64, usize);

/// The SplitMix64 generator: one 64-bit state word advanced by the golden
/// ratio and finalized with a strong avalanche mix. Used for seed
/// derivation — every distinct input sequence yields a decorrelated seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Advances the state and returns the next mixed value.
    pub fn next_value(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hashes a word sequence into one seed: fold each word into the
    /// state, mixing after each. `mix(&[a, b])` differs from `mix(&[b, a])`
    /// and from `mix(&[a ^ b])` — suitable for `(grid_seed, trial, attempt)`
    /// style derivation.
    pub fn mix(words: &[u64]) -> u64 {
        let mut sm = Self::new(0x51D2_CC5A_37C3_96DA);
        let mut acc = sm.next_value();
        for &w in words {
            sm.state ^= w ^ acc;
            acc = sm.next_value();
        }
        acc
    }
}

impl Rng for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_value() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_value()
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// The ChaCha stream cipher as a PRNG, generic over the round count.
///
/// State layout is djb's original: 4 constant words, 8 key words, a 64-bit
/// block counter, and a 64-bit nonce (zero for seeded streams). Each block
/// yields 16 output words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const ROUNDS: usize> {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    cursor: usize,
}

/// ChaCha with 8 rounds — the workspace's workhorse generator (matching
/// the strength/speed point `rand_chacha::ChaCha8Rng` picked).
pub type ChaCha8Rng = ChaChaRng<8>;

/// ChaCha with the full 20 rounds — used to check the implementation
/// against the published zero-key test vector.
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    /// Builds a generator from raw key words, block counter and nonce
    /// words. Exposed for test vectors; prefer [`SeedableRng::seed_from_u64`].
    pub fn from_raw_parts(key: [u32; 8], counter: u64, nonce: [u32; 2]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = nonce[0];
        state[15] = nonce[1];
        Self {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // Advance the 64-bit block counter.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl<const ROUNDS: usize> Rng for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buffer[self.cursor];
        self.cursor += 1;
        w
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    /// Expands the 64-bit seed into the 256-bit key with [`SplitMix64`]
    /// (the same construction `rand`'s default `seed_from_u64` uses).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let v = sm.next_value();
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        Self::from_raw_parts(key, 0, [0, 0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_zero_key_matches_published_vector() {
        // First 16 keystream bytes of ChaCha20 with all-zero key, nonce
        // and counter — the classic djb/RFC-7539-era known answer.
        let mut rng = ChaCha20Rng::from_raw_parts([0; 8], 0, [0, 0]);
        let mut bytes = Vec::new();
        for _ in 0..4 {
            bytes.extend_from_slice(&rng.next_u32().to_le_bytes());
        }
        assert_eq!(
            bytes,
            [
                0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
                0xbd, 0x28
            ]
        );
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // More than 16 words must not repeat the first block.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
        // Degenerate inclusive range is allowed (used for `0.0..=0.0`
        // inter-arrivals in the common-release generator).
        assert_eq!(rng.gen_range(3.5..=3.5), 3.5);
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..8 hit");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 1e-2, "rate {rate} far from 0.25");
    }

    #[test]
    fn splitmix_mix_is_order_sensitive() {
        let ab = SplitMix64::mix(&[1, 2]);
        let ba = SplitMix64::mix(&[2, 1]);
        let xor = SplitMix64::mix(&[3]);
        assert_ne!(ab, ba);
        assert_ne!(ab, xor);
        assert_eq!(ab, SplitMix64::mix(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "empty f64 range")]
    fn empty_exclusive_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = rng.gen_range(1.0..1.0);
    }
}
