//! The parallel sweep evaluation engine for SDEM experiments.
//!
//! The paper's evaluation (Figs. 6–7) is thousands of independent
//! `(task set × utilization × scheme)` trials. This crate fans such a grid
//! across worker threads while keeping the results **bit-identical to a
//! serial run**:
//!
//! * **Deterministic seeding** — every trial owns an independent seed
//!   stream derived from `(grid_seed, trial_index, attempt)` through
//!   [`sdem_prng::SplitMix64`], so no trial's randomness depends on
//!   scheduling order or thread count.
//! * **Lock-free reduction** — workers pull trial indices from one atomic
//!   cursor and buffer results locally; buffers are merged and sorted by
//!   trial index after the join. No mutex is held while trials run.
//! * **Bounded in-flight memory** — at any instant each worker holds at
//!   most one running trial; the only growing allocation is the result
//!   vector the caller asked for.
//! * **Fault isolation** — [`SweepRunner::run_quarantined`] contains
//!   per-trial panics with `catch_unwind`, discards the poisoned worker
//!   state, and records the failure as a replayable [`QuarantineRecord`]
//!   instead of aborting the sweep; uncontained worker deaths surface as
//!   [`SweepError::WorkerPanicked`] after every worker has been joined.
//! * **Checkpoint/resume** — a [`CheckpointJournal`] logs each finished
//!   trial as it completes, and a resumed sweep replays the journal and
//!   executes only the remainder, bit-identically to an uninterrupted
//!   run (seeds are derived, never sequential).
//!
//! The entry point is [`SweepRunner::run`], which takes the grid points,
//! the replication count and a trial closure, and returns the per-point
//! results plus wall-clock/throughput statistics ([`SweepStats`]).
//!
//! # Examples
//!
//! ```
//! use sdem_exec::SweepRunner;
//!
//! // 3 grid points × 4 replications, trial = seeded pseudo-measurement.
//! let points = [1.0f64, 2.0, 3.0];
//! let run = |threads: usize| {
//!     SweepRunner::new()
//!         .with_threads(threads)
//!         .run(&points, 4, 0xD00D, |&p, ctx| Some(p * ctx.seed(0) as f64))
//! };
//! let serial = run(1);
//! let parallel = run(4);
//! assert_eq!(serial.per_point, parallel.per_point); // bit-identical
//! assert_eq!(serial.stats.trials, 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod fault;

pub use checkpoint::CheckpointJournal;
pub use fault::{payload_text, QuarantineRecord, SweepError, TrialFailure, FATAL_PANIC_PREFIX};

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdem_prng::SplitMix64;

/// Relative tolerance [`SweepRunner::with_oracle`] configures when none is
/// given explicitly.
pub const DEFAULT_ORACLE_TOLERANCE: f64 = 1e-6;

/// Per-worker observability accumulator: plain (non-atomic) latency
/// histograms plus trial tallies, owned by exactly one worker while the
/// sweep runs and merged into the global `sdem-obs` registry at join —
/// in worker-index order, so the aggregate is deterministic for any
/// thread count (histogram merges are integer adds, which commute).
///
/// Only populated when observability was enabled when the engine
/// started; otherwise every field stays empty and [`WorkerObs::publish`]
/// is a no-op.
#[derive(Debug)]
struct WorkerObs {
    /// Wall latency of each trial closure invocation, nanoseconds.
    trial_ns: sdem_obs::Histogram,
    /// Wall latency of each sink call (checkpoint journaling /
    /// quarantine recording overhead), nanoseconds.
    sink_ns: sdem_obs::Histogram,
    /// Trials this worker ran.
    trials: u64,
    /// Trials that ended in a fault slot.
    faults: u64,
}

impl WorkerObs {
    fn new() -> Self {
        Self {
            trial_ns: sdem_obs::Histogram::new(),
            sink_ns: sdem_obs::Histogram::new(),
            trials: 0,
            faults: 0,
        }
    }

    /// Merges this worker's histograms and tallies into the global
    /// registry (no-op when they are empty or observability is off).
    fn publish(self) {
        use sdem_obs::registry::{self, Counter};
        registry::merge_histogram("exec/trial_ns", &self.trial_ns);
        registry::merge_histogram("exec/sink_ns", &self.sink_ns);
        registry::add(Counter::TrialsRun, self.trials);
        registry::add(Counter::TrialsFaulted, self.faults);
    }
}

/// The identity of one trial inside a sweep, carrying its deterministic
/// seed stream.
///
/// Trials are numbered row-major: `trial_index = point * replications +
/// replicate`. The seed for attempt `a` is a pure function of
/// `(grid_seed, trial_index, a)` — independent of which worker runs the
/// trial and of how many workers exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialCtx {
    grid_seed: u64,
    point: usize,
    replicate: usize,
    trial_index: usize,
    /// Sim-oracle tolerance as IEEE-754 bits (`None` = oracle off); bits
    /// rather than `f64` so the context stays `Copy + Eq`.
    oracle_tol_bits: Option<u64>,
}

impl TrialCtx {
    /// Builds the context for one `(point, replicate)` cell (oracle off).
    pub fn new(grid_seed: u64, point: usize, replicate: usize, replications: usize) -> Self {
        Self {
            grid_seed,
            point,
            replicate,
            trial_index: point * replications + replicate,
            oracle_tol_bits: None,
        }
    }

    /// Returns a copy asking the trial to cross-check analytic energies
    /// against the simulator within the given relative tolerance.
    #[must_use]
    pub fn with_oracle_tolerance(mut self, rel_tol: f64) -> Self {
        self.oracle_tol_bits = Some(rel_tol.to_bits());
        self
    }

    /// The sim-oracle tolerance the sweep was configured with, or `None`
    /// when the oracle is off. Trial closures that compute both an analytic
    /// and a metered energy should compare them within this tolerance and
    /// fail loudly on divergence.
    #[inline]
    pub fn oracle_tolerance(&self) -> Option<f64> {
        self.oracle_tol_bits.map(f64::from_bits)
    }

    /// Index of the grid point this trial belongs to.
    #[inline]
    pub fn point(&self) -> usize {
        self.point
    }

    /// Replicate number within the point (`0..replications`).
    #[inline]
    pub fn replicate(&self) -> usize {
        self.replicate
    }

    /// Flat trial index across the whole grid.
    #[inline]
    pub fn trial_index(&self) -> usize {
        self.trial_index
    }

    /// The deterministic seed for retry `attempt` of this trial. Trials
    /// that resample on infeasible instances draw `seed(0)`, `seed(1)`, …
    /// — a private stream that never collides with other trials'.
    pub fn seed(&self, attempt: u64) -> u64 {
        SplitMix64::mix(&[self.grid_seed, self.trial_index as u64, attempt])
    }

    /// An infinite iterator over this trial's seed stream.
    pub fn seeds(&self) -> impl Iterator<Item = u64> + '_ {
        (0u64..).map(|a| self.seed(a))
    }
}

/// A progress snapshot delivered to the observer callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Trials finished so far (success or failure).
    pub completed: usize,
    /// Total trials in the grid.
    pub total: usize,
}

/// Wall-clock and throughput statistics of one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Grid points evaluated.
    pub points: usize,
    /// Replications requested per point.
    pub replications: usize,
    /// Total trials in the grid (`points × replications`).
    pub trials: usize,
    /// Trials whose closure returned `None` (e.g. no feasible seed).
    pub failures: usize,
    /// Trials quarantined by the fault-isolation layer (panic contained,
    /// structured trial error, …). Always `0` for non-quarantined runs.
    pub quarantined: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of the sweep.
    pub wall: Duration,
    /// `trials / wall` in trials per second.
    pub trials_per_sec: f64,
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} trials ({} points × {} reps, {} failed) in {:.2} s on {} thread(s) — {:.1} trials/s",
            self.trials,
            self.points,
            self.replications,
            self.failures,
            self.wall.as_secs_f64(),
            self.threads,
            self.trials_per_sec,
        )?;
        if self.quarantined > 0 {
            write!(f, " [{} quarantined]", self.quarantined)?;
        }
        Ok(())
    }
}

/// The result of [`SweepRunner::run`]: per-point results plus statistics.
#[derive(Debug, Clone)]
pub struct SweepOutcome<T> {
    /// `per_point[p]` holds the successful replicate results of point `p`
    /// in replicate order (failed replicates are skipped, preserving the
    /// order of the rest).
    pub per_point: Vec<Vec<T>>,
    /// Wall-clock/throughput statistics.
    pub stats: SweepStats,
}

/// The result of a quarantined (fault-isolated) sweep.
///
/// Successful trials land in `per_point` exactly as in [`SweepOutcome`];
/// failed trials are excluded from the aggregates and described by one
/// [`QuarantineRecord`] each, sorted by trial index — so the quarantine
/// list (and its `quarantine.jsonl` serialization) is byte-identical for
/// any worker-thread count.
#[derive(Debug, Clone)]
pub struct QuarantinedOutcome<T> {
    /// Successful replicate results per grid point, in replicate order.
    pub per_point: Vec<Vec<T>>,
    /// One record per quarantined trial, sorted by trial index.
    pub quarantine: Vec<QuarantineRecord>,
    /// Wall-clock/throughput statistics (`stats.quarantined` counts the
    /// records in `quarantine`).
    pub stats: SweepStats,
    /// Trials accounted for — executed this run plus any preloaded from
    /// a checkpoint. Less than `stats.trials` only when a trial budget
    /// stopped the sweep early.
    pub completed: usize,
}

impl<T> QuarantinedOutcome<T> {
    /// Whether the sweep stopped before covering the whole grid (trial
    /// budget exhausted). Partial outcomes carry valid but incomplete
    /// aggregates; resume from the checkpoint to finish.
    pub fn is_partial(&self) -> bool {
        self.completed < self.stats.trials
    }
}

type ProgressFn = dyn Fn(SweepProgress) + Send + Sync;

/// How one trial ended inside the engine.
pub(crate) enum Slot<T> {
    /// The trial produced a result.
    Done(T),
    /// The trial declined (legacy `Option`-style failure, not quarantined).
    Skip,
    /// The trial failed and was quarantined.
    Fault(TrialFailure),
}

/// Observer called once per newly finished trial, from worker threads
/// (the checkpoint journal's append hook).
type TrialSink<'a, T> = &'a (dyn Fn(usize, &Slot<T>) + Sync);

/// What [`SweepRunner::engine`] returns: index-sorted trial slots plus
/// the resolved worker count and the wall-clock time.
type EngineOutput<T> = (Vec<(usize, Slot<T>)>, usize, Duration);

/// Per-run knobs of the shared engine (see [`SweepRunner::engine`]).
struct EngineConfig<'a, T> {
    /// Contain per-trial panics (quarantine) instead of letting them
    /// kill the worker.
    contain_panics: bool,
    /// Maximum number of trials to newly execute (`None` = all).
    budget: Option<usize>,
    /// Trials already finished by a previous run, skipped this run.
    preloaded: Vec<(usize, Slot<T>)>,
    /// Called once per newly finished trial, from worker threads.
    sink: Option<TrialSink<'a, T>>,
}

impl<T> Default for EngineConfig<'_, T> {
    fn default() -> Self {
        Self {
            contain_panics: false,
            budget: None,
            preloaded: Vec::new(),
            sink: None,
        }
    }
}

/// Builds the [`QuarantineRecord`] for a failed trial, recomputing the
/// grid coordinates and falling back to the trial's `seed(0)` when the
/// failure did not name the exact failing attempt.
fn record_from(
    grid_seed: u64,
    replications: usize,
    trial_index: usize,
    failure: TrialFailure,
) -> QuarantineRecord {
    let reps = replications.max(1);
    let (point, replicate) = (trial_index / reps, trial_index % reps);
    let seed = failure
        .seed
        .unwrap_or_else(|| TrialCtx::new(grid_seed, point, replicate, replications).seed(0));
    QuarantineRecord {
        trial_index,
        point,
        replicate,
        grid_seed,
        seed,
        kind: failure.kind,
        detail: failure.detail,
        config: failure.config,
    }
}

/// The parallel sweep engine. Construct, optionally bound the thread
/// count or attach a progress observer, then [`run`](Self::run) a grid.
#[derive(Clone, Default)]
pub struct SweepRunner {
    threads: Option<NonZeroUsize>,
    progress: Option<Arc<ProgressFn>>,
    oracle_tol_bits: Option<u64>,
    trial_budget: Option<NonZeroUsize>,
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("threads", &self.threads)
            .field("progress", &self.progress.is_some())
            .field("oracle_tolerance", &self.oracle_tolerance())
            .field("trial_budget", &self.trial_budget)
            .finish()
    }
}

impl SweepRunner {
    /// A runner that uses every available hardware thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the worker count; `0` restores the hardware default.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// Attaches a progress observer, called once per finished trial from
    /// worker threads (keep it cheap and thread-safe).
    #[must_use]
    pub fn with_progress(
        mut self,
        observer: impl Fn(SweepProgress) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(observer));
        self
    }

    /// Enables (with [`DEFAULT_ORACLE_TOLERANCE`]) or disables the
    /// sim-oracle cross-check every trial's [`TrialCtx`] advertises.
    #[must_use]
    pub fn with_oracle(mut self, enabled: bool) -> Self {
        self.oracle_tol_bits = enabled.then_some(DEFAULT_ORACLE_TOLERANCE.to_bits());
        self
    }

    /// Enables the sim-oracle with an explicit relative tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `rel_tol` is negative or non-finite.
    #[must_use]
    pub fn with_oracle_tolerance(mut self, rel_tol: f64) -> Self {
        assert!(
            rel_tol.is_finite() && rel_tol >= 0.0,
            "oracle tolerance must be finite and non-negative"
        );
        self.oracle_tol_bits = Some(rel_tol.to_bits());
        self
    }

    /// The configured oracle tolerance, or `None` when the oracle is off.
    #[inline]
    pub fn oracle_tolerance(&self) -> Option<f64> {
        self.oracle_tol_bits.map(f64::from_bits)
    }

    /// Caps the number of trials a quarantined or checkpointed sweep
    /// newly executes (`0` = unlimited). Hitting the cap produces a
    /// *partial* [`QuarantinedOutcome`] — the supported way to simulate
    /// an interrupted sweep when exercising checkpoint/resume. Plain
    /// [`run`](Self::run)/[`run_with_state`](Self::run_with_state)
    /// ignore the budget.
    #[must_use]
    pub fn with_trial_budget(mut self, budget: usize) -> Self {
        self.trial_budget = NonZeroUsize::new(budget);
        self
    }

    /// The worker count a grid of `total` trials would use.
    pub fn resolved_threads(&self, total: usize) -> usize {
        let hw = self
            .threads
            .map(NonZeroUsize::get)
            .or_else(|| {
                std::thread::available_parallelism()
                    .ok()
                    .map(NonZeroUsize::get)
            })
            .unwrap_or(1);
        hw.min(total.max(1))
    }

    /// The [`TrialCtx`] of flat trial `flat`, carrying this runner's
    /// oracle configuration.
    fn ctx_for(&self, grid_seed: u64, replications: usize, flat: usize) -> TrialCtx {
        let reps = replications.max(1);
        let mut ctx = TrialCtx::new(grid_seed, flat / reps, flat % reps, replications);
        if let Some(bits) = self.oracle_tol_bits {
            ctx = ctx.with_oracle_tolerance(f64::from_bits(bits));
        }
        ctx
    }

    #[allow(clippy::too_many_arguments)]
    fn stats(
        &self,
        points: usize,
        replications: usize,
        trials: usize,
        failures: usize,
        quarantined: usize,
        threads: usize,
        wall: Duration,
    ) -> SweepStats {
        let secs = wall.as_secs_f64();
        SweepStats {
            points,
            replications,
            trials,
            failures,
            quarantined,
            threads,
            wall,
            trials_per_sec: if secs > 0.0 {
                trials as f64 / secs
            } else {
                0.0
            },
        }
    }

    /// The shared engine behind every public run mode: fans the grid
    /// across workers, optionally containing per-trial panics and
    /// honoring a trial budget, and returns the index-sorted slots plus
    /// `(threads, wall)`.
    fn engine<P, T, S>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        init: &(impl Fn() -> S + Sync),
        trial: &(impl Fn(&P, &TrialCtx, &mut S) -> Slot<T> + Sync),
        cfg: EngineConfig<'_, T>,
    ) -> Result<EngineOutput<T>, SweepError>
    where
        P: Sync,
        T: Send,
    {
        let total = points.len() * replications;
        let threads = self.resolved_threads(total);
        let started = Instant::now();

        // Mark preloaded (checkpointed) trials done so workers skip them;
        // first occurrence wins if a journal ever repeated an index.
        let mut done = vec![false; total];
        let mut preloaded = Vec::with_capacity(cfg.preloaded.len());
        for (i, slot) in cfg.preloaded {
            if i < total && !done[i] {
                done[i] = true;
                preloaded.push((i, slot));
            }
        }
        let done = done;

        let budget = AtomicUsize::new(cfg.budget.unwrap_or(usize::MAX));
        let completed = AtomicUsize::new(0);
        let observe = |completed: &AtomicUsize| {
            if let Some(cb) = &self.progress {
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                cb(SweepProgress {
                    completed: done,
                    total,
                });
            }
        };

        let next = |cursor: &AtomicUsize| -> Option<usize> {
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return None;
                }
                if done[i] {
                    continue;
                }
                let claimed = budget
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                    .is_ok();
                if !claimed {
                    return None;
                }
                return Some(i);
            }
        };

        // One flag read for the whole sweep: per-worker latency
        // histograms are kept only when observability is on at start.
        let obs_on = sdem_obs::registry::enabled();

        let run_one = |i: usize, state: &mut S, obs: &mut WorkerObs| -> (usize, Slot<T>) {
            let ctx = self.ctx_for(grid_seed, replications, i);
            let trial_clock = if obs_on { Some(Instant::now()) } else { None };
            let _span = sdem_obs::trace::span("exec/trial");
            let slot = if cfg.contain_panics {
                // AssertUnwindSafe: on a caught panic the worker state is
                // discarded and rebuilt below, so no half-mutated state is
                // ever observed after the unwind.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    trial(&points[ctx.point()], &ctx, state)
                }));
                match attempt {
                    Ok(slot) => slot,
                    Err(payload) => {
                        let text = payload_text(payload.as_ref());
                        if text.starts_with(FATAL_PANIC_PREFIX) {
                            resume_unwind(payload);
                        }
                        *state = init();
                        Slot::Fault(TrialFailure::panic(text).with_seed(ctx.seed(0)))
                    }
                }
            } else {
                trial(&points[ctx.point()], &ctx, state)
            };
            if matches!(slot, Slot::Fault(_)) {
                sdem_obs::trace::instant("exec/trial-fault");
            }
            if let Some(start) = trial_clock {
                obs.trial_ns.record(start.elapsed().as_nanos() as u64);
                obs.trials += 1;
                if matches!(slot, Slot::Fault(_)) {
                    obs.faults += 1;
                }
            }
            if let Some(sink) = cfg.sink {
                let sink_clock = if obs_on { Some(Instant::now()) } else { None };
                sink(i, &slot);
                if let Some(start) = sink_clock {
                    obs.sink_ns.record(start.elapsed().as_nanos() as u64);
                }
            }
            observe(&completed);
            (i, slot)
        };

        let mut flat: Vec<(usize, Slot<T>)> = if threads <= 1 || total <= 1 {
            let cursor = AtomicUsize::new(0);
            let serial = || {
                let mut state = init();
                // Sized for the whole sweep up front: result pushes never
                // reallocate, so the only per-trial heap traffic is the
                // trial's own (workspace-pooled) scratch.
                let mut local = Vec::with_capacity(total);
                let mut obs = WorkerObs::new();
                while let Some(i) = next(&cursor) {
                    local.push(run_one(i, &mut state, &mut obs));
                }
                (local, obs)
            };
            if cfg.contain_panics {
                // Mirror the parallel path: a fatal (prefix-escalated)
                // panic becomes WorkerPanicked instead of unwinding
                // through the caller.
                match catch_unwind(AssertUnwindSafe(serial)) {
                    Ok((local, obs)) => {
                        obs.publish();
                        local
                    }
                    Err(payload) => {
                        return Err(SweepError::WorkerPanicked {
                            worker: 0,
                            payload: payload_text(payload.as_ref()),
                        })
                    }
                }
            } else {
                let (local, obs) = serial();
                obs.publish();
                local
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let mut merged = Vec::with_capacity(total);
            let mut first_panic: Option<(usize, String)> = None;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut state = init();
                            // The work-stealing cursor lets a fast worker
                            // claim more than its even share; size for the
                            // whole sweep so pushes never reallocate.
                            let mut local = Vec::with_capacity(total);
                            let mut obs = WorkerObs::new();
                            while let Some(i) = next(&cursor) {
                                local.push(run_one(i, &mut state, &mut obs));
                            }
                            (local, obs)
                        })
                    })
                    .collect();
                // Join every worker before deciding the outcome: one dead
                // worker must not abort the merge while the rest still run.
                // Workers are joined (and their local observability
                // histograms published) in worker-index order, so the
                // metrics merge is as deterministic as the result merge.
                for (worker, handle) in handles.into_iter().enumerate() {
                    match handle.join() {
                        Ok((local, obs)) => {
                            obs.publish();
                            merged.extend(local);
                        }
                        Err(payload) => {
                            let text = payload_text(payload.as_ref());
                            first_panic.get_or_insert((worker, text));
                        }
                    }
                }
            });
            if let Some((worker, payload)) = first_panic {
                return Err(SweepError::WorkerPanicked { worker, payload });
            }
            merged
        };

        flat.extend(preloaded);
        flat.sort_unstable_by_key(|&(i, _)| i);
        Ok((flat, threads, started.elapsed()))
    }

    /// Evaluates `trial` over every `(point, replicate)` cell of the grid,
    /// fanning cells across worker threads.
    ///
    /// `trial` receives the grid point and the trial's [`TrialCtx`]; it
    /// returns `None` to record a failed trial (e.g. when no feasible seed
    /// exists within its retry budget). Results are regrouped per point in
    /// replicate order, so the outcome is **identical for any thread
    /// count** as long as `trial` derives all randomness from the context.
    pub fn run<P, T, F>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        trial: F,
    ) -> SweepOutcome<T>
    where
        P: Sync,
        T: Send,
        F: Fn(&P, &TrialCtx) -> Option<T> + Sync,
    {
        self.run_with_state(
            points,
            replications,
            grid_seed,
            || (),
            |p, ctx, _: &mut ()| trial(p, ctx),
        )
    }

    /// Like [`run`](Self::run), but each worker thread owns a mutable
    /// state value created by `init` and passed to every trial it
    /// executes. This is how callers thread a reusable scratch arena
    /// (e.g. `sdem_types::Workspace`) through the sweep: one workspace
    /// per worker, reused across that worker's trials, no sharing and no
    /// locking.
    ///
    /// The state must not influence results — trials must stay pure
    /// functions of `(point, ctx)` — or the thread-count invariance
    /// guarantee breaks. A scratch arena satisfies this by construction:
    /// buffers are handed out empty.
    ///
    /// # Panics
    ///
    /// Panics (after joining every worker) if a trial closure panics;
    /// use [`try_run_with_state`](Self::try_run_with_state) to receive
    /// [`SweepError::WorkerPanicked`] instead, or
    /// [`run_quarantined_with_state`](Self::run_quarantined_with_state)
    /// to contain the panic per trial.
    pub fn run_with_state<P, T, S, I, F>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        init: I,
        trial: F,
    ) -> SweepOutcome<T>
    where
        P: Sync,
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&P, &TrialCtx, &mut S) -> Option<T> + Sync,
    {
        match self.try_run_with_state(points, replications, grid_seed, init, trial) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`run_with_state`](Self::run_with_state), but a panicking
    /// trial surfaces as [`SweepError::WorkerPanicked`] — carrying the
    /// worker index and the panic payload — after the remaining workers
    /// have been drained, instead of aborting the merge.
    ///
    /// (With a single worker the panic unwinds directly to the caller,
    /// exactly as a serial loop would.)
    pub fn try_run_with_state<P, T, S, I, F>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        init: I,
        trial: F,
    ) -> Result<SweepOutcome<T>, SweepError>
    where
        P: Sync,
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&P, &TrialCtx, &mut S) -> Option<T> + Sync,
    {
        let total = points.len() * replications;
        let (flat, threads, wall) = self.engine(
            points,
            replications,
            grid_seed,
            &init,
            &|p: &P, ctx: &TrialCtx, s: &mut S| match trial(p, ctx, s) {
                Some(t) => Slot::Done(t),
                None => Slot::Skip,
            },
            EngineConfig::default(),
        )?;

        let mut per_point: Vec<Vec<T>> = (0..points.len())
            .map(|_| Vec::with_capacity(replications))
            .collect();
        let mut failures = 0usize;
        for (i, slot) in flat {
            match slot {
                Slot::Done(t) => per_point[i / replications.max(1)].push(t),
                Slot::Skip | Slot::Fault(_) => failures += 1,
            }
        }
        Ok(SweepOutcome {
            per_point,
            stats: self.stats(
                points.len(),
                replications,
                total,
                failures,
                0,
                threads,
                wall,
            ),
        })
    }

    /// Fault-isolated sweep: a trial returns `Err(TrialFailure)` — or
    /// panics — without taking the sweep down. See
    /// [`run_quarantined_with_state`](Self::run_quarantined_with_state).
    pub fn run_quarantined<P, T, F>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        trial: F,
    ) -> Result<QuarantinedOutcome<T>, SweepError>
    where
        P: Sync,
        T: Send,
        F: Fn(&P, &TrialCtx) -> Result<T, TrialFailure> + Sync,
    {
        self.run_quarantined_with_state(
            points,
            replications,
            grid_seed,
            || (),
            |p, ctx, _: &mut ()| trial(p, ctx),
        )
    }

    /// Fault-isolated sweep with per-worker state.
    ///
    /// Differences from [`run_with_state`](Self::run_with_state):
    ///
    /// * The trial returns `Result<T, TrialFailure>`; an `Err` is
    ///   recorded as a [`QuarantineRecord`] instead of being dropped.
    /// * A panicking trial is contained with `catch_unwind`: the worker
    ///   state (possibly half-mutated by the unwind) is **discarded and
    ///   rebuilt** via `init`, and the panic becomes a `solver-panic`
    ///   quarantine record carrying the trial's `seed(0)`. Panics whose
    ///   payload starts with [`FATAL_PANIC_PREFIX`] are re-raised and
    ///   surface as [`SweepError::WorkerPanicked`].
    /// * A trial budget ([`with_trial_budget`](Self::with_trial_budget))
    ///   may stop the sweep early, yielding a partial outcome.
    ///
    /// The quarantine list is sorted by trial index and therefore
    /// byte-identical for any worker-thread count.
    pub fn run_quarantined_with_state<P, T, S, I, F>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        init: I,
        trial: F,
    ) -> Result<QuarantinedOutcome<T>, SweepError>
    where
        P: Sync,
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&P, &TrialCtx, &mut S) -> Result<T, TrialFailure> + Sync,
    {
        self.quarantined_run(
            points,
            replications,
            grid_seed,
            &init,
            &trial,
            Vec::new(),
            None,
        )
    }

    /// Fault-isolated sweep that journals every finished trial to
    /// `journal` and preloads whatever the journal already holds.
    ///
    /// `encode`/`decode` translate a successful trial result to/from the
    /// journal's line payload; to keep a resumed run bit-identical to an
    /// uninterrupted one they must round-trip results **exactly** (for
    /// floats: `f64::to_bits` hex, not decimal formatting).
    ///
    /// Pass a journal from [`CheckpointJournal::new`] to start fresh or
    /// from [`CheckpointJournal::resume`] to continue an interrupted
    /// sweep; a resumed journal whose grid seed or shape differs from
    /// this sweep fails with [`SweepError::CheckpointMismatch`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_run_checkpointed_with_state<P, T, S, I, F, E, D>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        init: I,
        trial: F,
        encode: E,
        decode: D,
        journal: &mut CheckpointJournal,
    ) -> Result<QuarantinedOutcome<T>, SweepError>
    where
        P: Sync,
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&P, &TrialCtx, &mut S) -> Result<T, TrialFailure> + Sync,
        E: Fn(&T) -> String + Sync,
        D: Fn(&str) -> Option<T>,
    {
        let preloaded = journal.prepare(grid_seed, points.len(), replications, &decode)?;
        let journal_ref: &CheckpointJournal = journal;
        let sink = |i: usize, slot: &Slot<T>| match slot {
            Slot::Done(t) => journal_ref.append_ok(i, &encode(t)),
            Slot::Fault(f) => {
                journal_ref.append_fault(i, &record_from(grid_seed, replications, i, f.clone()));
            }
            Slot::Skip => {}
        };
        let outcome = self.quarantined_run(
            points,
            replications,
            grid_seed,
            &init,
            &trial,
            preloaded,
            Some(&sink),
        )?;
        if let Some(e) = journal_ref.take_error() {
            return Err(e);
        }
        Ok(outcome)
    }

    /// Shared implementation of the quarantined run modes.
    #[allow(clippy::too_many_arguments)]
    fn quarantined_run<P, T, S>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        init: &(impl Fn() -> S + Sync),
        trial: &(impl Fn(&P, &TrialCtx, &mut S) -> Result<T, TrialFailure> + Sync),
        preloaded: Vec<(usize, Slot<T>)>,
        sink: Option<TrialSink<'_, T>>,
    ) -> Result<QuarantinedOutcome<T>, SweepError>
    where
        P: Sync,
        T: Send,
    {
        let total = points.len() * replications;
        let cfg = EngineConfig {
            contain_panics: true,
            budget: self.trial_budget.map(NonZeroUsize::get),
            preloaded,
            sink,
        };
        let (flat, threads, wall) = self.engine(
            points,
            replications,
            grid_seed,
            init,
            &|p: &P, ctx: &TrialCtx, s: &mut S| match trial(p, ctx, s) {
                Ok(t) => Slot::Done(t),
                Err(f) => Slot::Fault(f),
            },
            cfg,
        )?;

        let completed = flat.len();
        let mut per_point: Vec<Vec<T>> = (0..points.len())
            .map(|_| Vec::with_capacity(replications))
            .collect();
        let mut quarantine = Vec::new();
        let mut failures = 0usize;
        for (i, slot) in flat {
            match slot {
                Slot::Done(t) => per_point[i / replications.max(1)].push(t),
                Slot::Skip => failures += 1,
                Slot::Fault(f) => quarantine.push(record_from(grid_seed, replications, i, f)),
            }
        }
        let stats = self.stats(
            points.len(),
            replications,
            total,
            failures,
            quarantine.len(),
            threads,
            wall,
        );
        Ok(QuarantinedOutcome {
            per_point,
            quarantine,
            stats,
            completed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};

    fn measurement(point: &f64, ctx: &TrialCtx) -> Option<f64> {
        // Simulate "infeasible seed" resampling: reject attempt 0 for odd
        // trial indices so the retry path is exercised.
        let attempt = u64::from(ctx.trial_index() % 2 == 1);
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed(attempt));
        Some(point * rng.gen_range(0.0..1.0))
    }

    #[test]
    fn outcome_is_thread_count_invariant() {
        let points: Vec<f64> = (1..=7).map(f64::from).collect();
        let baseline = SweepRunner::new()
            .with_threads(1)
            .run(&points, 5, 99, measurement);
        for threads in [2, 4, 8] {
            let parallel =
                SweepRunner::new()
                    .with_threads(threads)
                    .run(&points, 5, 99, measurement);
            assert_eq!(baseline.per_point, parallel.per_point, "{threads} threads");
        }
    }

    #[test]
    fn seeds_are_unique_across_trials_and_attempts() {
        let mut seen = std::collections::HashSet::new();
        for point in 0..16 {
            for replicate in 0..16 {
                let ctx = TrialCtx::new(7, point, replicate, 16);
                for attempt in 0..4 {
                    assert!(seen.insert(ctx.seed(attempt)), "seed collision");
                }
            }
        }
        // A different grid seed shifts every stream.
        let a = TrialCtx::new(7, 0, 0, 16).seed(0);
        let b = TrialCtx::new(8, 0, 0, 16).seed(0);
        assert_ne!(a, b);
    }

    #[test]
    fn per_worker_state_is_reused_and_results_stay_invariant() {
        let points: Vec<f64> = (1..=6).map(f64::from).collect();
        // The state is a scratch Vec each trial fills and drains — results
        // must not depend on it, and the outcome must stay thread-count
        // invariant.
        let run = |threads: usize| {
            SweepRunner::new().with_threads(threads).run_with_state(
                &points,
                4,
                42,
                Vec::<f64>::new,
                |&p, ctx, scratch| {
                    scratch.push(p);
                    let r = p * ctx.seed(0) as f64;
                    scratch.clear();
                    Some(r)
                },
            )
        };
        let serial = run(1);
        for threads in [2, 8] {
            assert_eq!(
                serial.per_point,
                run(threads).per_point,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn failures_are_counted_and_skipped() {
        let points = [0usize, 1, 2];
        let outcome = SweepRunner::new()
            .with_threads(2)
            .run(&points, 4, 0, |&p, ctx| {
                // Point 1 always fails; others succeed.
                (p != 1).then_some(ctx.replicate())
            });
        assert_eq!(outcome.stats.failures, 4);
        assert_eq!(outcome.per_point[0], vec![0, 1, 2, 3]);
        assert!(outcome.per_point[1].is_empty());
        assert_eq!(outcome.per_point[2], vec![0, 1, 2, 3]);
    }

    #[test]
    fn progress_reaches_total() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let outcome = SweepRunner::new()
            .with_threads(3)
            .with_progress(move |p| {
                seen2.fetch_max(p.completed, Ordering::Relaxed);
                assert!(p.completed <= p.total);
            })
            .run(&[1, 2, 3, 4], 3, 5, |&p, _| Some(p));
        assert_eq!(seen.load(Ordering::Relaxed), 12);
        assert_eq!(outcome.stats.trials, 12);
        assert!(outcome.stats.trials_per_sec > 0.0);
    }

    #[test]
    fn empty_grid_is_fine() {
        let outcome = SweepRunner::new().run(&[] as &[f64], 3, 0, |_, _| Some(0.0));
        assert!(outcome.per_point.is_empty());
        assert_eq!(outcome.stats.trials, 0);
        let outcome = SweepRunner::new().run(&[1.0], 0, 0, |_, _| Some(0.0));
        assert_eq!(outcome.per_point.len(), 1);
        assert!(outcome.per_point[0].is_empty());
    }

    #[test]
    fn oracle_tolerance_reaches_every_trial() {
        // Off by default.
        let outcome = SweepRunner::new().run(&[0u8], 2, 0, |_, ctx| ctx.oracle_tolerance());
        assert_eq!(outcome.per_point[0], Vec::<f64>::new());
        assert_eq!(outcome.stats.failures, 2);

        // with_oracle(true) advertises the default tolerance to all trials.
        let outcome =
            SweepRunner::new()
                .with_oracle(true)
                .with_threads(2)
                .run(&[0u8, 1], 3, 0, |_, ctx| ctx.oracle_tolerance());
        for point in &outcome.per_point {
            assert_eq!(point.as_slice(), &[DEFAULT_ORACLE_TOLERANCE; 3]);
        }

        // Explicit tolerance survives the bit round-trip exactly; turning
        // the oracle back off clears it.
        let runner = SweepRunner::new().with_oracle_tolerance(3.5e-9);
        assert_eq!(runner.oracle_tolerance(), Some(3.5e-9));
        assert_eq!(runner.with_oracle(false).oracle_tolerance(), None);
    }

    #[test]
    fn oracle_contexts_stay_copy_and_eq() {
        let a = TrialCtx::new(1, 0, 0, 4).with_oracle_tolerance(1e-6);
        let b = TrialCtx::new(1, 0, 0, 4).with_oracle_tolerance(1e-6);
        assert_eq!(a, b);
        assert_ne!(a, TrialCtx::new(1, 0, 0, 4));
        assert_eq!(a.oracle_tolerance(), Some(1e-6));
        // Seeds are unaffected by the oracle flag.
        assert_eq!(a.seed(0), TrialCtx::new(1, 0, 0, 4).seed(0));
    }

    #[test]
    fn stats_display_is_informative() {
        let outcome = SweepRunner::new()
            .with_threads(2)
            .run(&[1.0, 2.0], 2, 0, |&p, _| Some(p));
        let s = outcome.stats.to_string();
        assert!(s.contains("4 trials"));
        assert!(s.contains("trials/s"));
        assert!(!s.contains("quarantined"));

        let mut stats = outcome.stats;
        stats.quarantined = 3;
        assert!(stats.to_string().contains("[3 quarantined]"));
    }

    /// A trial that panics on every index ≡ 0 (mod 5), returns a
    /// structured failure on every index ≡ 1 (mod 5), and succeeds
    /// otherwise — selection is a pure function of the trial index so
    /// every thread count injects the same set.
    fn faulty_trial(point: &f64, ctx: &TrialCtx) -> Result<u64, TrialFailure> {
        match ctx.trial_index() % 5 {
            0 => panic!("injected fault: solver panic (trial {})", ctx.trial_index()),
            1 => Err(TrialFailure::new("non-finite-energy", "injected NaN")
                .with_seed(ctx.seed(3))
                .with_config("--injected")),
            _ => Ok(ctx.seed(0) ^ point.to_bits()),
        }
    }

    #[test]
    fn quarantine_contains_faults_and_stays_thread_invariant() {
        let points: Vec<f64> = (1..=5).map(f64::from).collect();
        let run = |threads: usize| {
            SweepRunner::new()
                .with_threads(threads)
                .run_quarantined(&points, 4, 0xFA11, faulty_trial)
                .expect("no fatal error")
        };
        let baseline = run(1);
        assert_eq!(baseline.stats.trials, 20);
        assert_eq!(baseline.stats.quarantined, 8); // 4 panics + 4 failures
        assert!(!baseline.is_partial());
        let kinds: Vec<&str> = baseline
            .quarantine
            .iter()
            .map(|r| r.kind.as_str())
            .collect();
        assert_eq!(kinds.iter().filter(|k| **k == "solver-panic").count(), 4);
        assert_eq!(
            kinds.iter().filter(|k| **k == "non-finite-energy").count(),
            4
        );
        // Structured failures keep the attempt seed they reported; panics
        // fall back to seed(0).
        for record in &baseline.quarantine {
            let ctx = TrialCtx::new(0xFA11, record.point, record.replicate, 4);
            let expected = if record.kind == "solver-panic" {
                ctx.seed(0)
            } else {
                ctx.seed(3)
            };
            assert_eq!(record.seed, expected);
            assert!(record.detail.contains("injected"));
        }
        for threads in [4, 8] {
            let parallel = run(threads);
            assert_eq!(baseline.per_point, parallel.per_point, "{threads} threads");
            assert_eq!(
                baseline.quarantine, parallel.quarantine,
                "{threads} threads"
            );
            let serialize = |o: &QuarantinedOutcome<u64>| {
                o.quarantine
                    .iter()
                    .map(|r| r.to_json_line())
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(serialize(&baseline), serialize(&parallel));
        }
    }

    #[test]
    fn poisoned_worker_state_is_discarded_and_rebuilt() {
        // The trial marks the state dirty *before* panicking; if the
        // engine reused the unwound state, later trials would see the
        // mark and report "leaked".
        let outcome = SweepRunner::new()
            .with_threads(1)
            .run_quarantined_with_state(
                &[0u8; 3],
                4,
                7,
                || false,
                |_, ctx, dirty: &mut bool| {
                    if *dirty {
                        return Err(TrialFailure::new("leaked", "saw poisoned state"));
                    }
                    if ctx.trial_index() == 2 {
                        *dirty = true;
                        panic!("injected fault");
                    }
                    Ok(ctx.trial_index())
                },
            )
            .expect("no fatal error");
        assert_eq!(outcome.stats.quarantined, 1);
        assert_eq!(outcome.quarantine[0].kind, "solver-panic");
        assert!(outcome.quarantine.iter().all(|r| r.kind != "leaked"));
    }

    #[test]
    fn fatal_panics_escalate_to_worker_panicked() {
        for threads in [1, 2] {
            let result = SweepRunner::new().with_threads(threads).run_quarantined(
                &[0u8; 2],
                3,
                1,
                |_, ctx| -> Result<(), TrialFailure> {
                    if ctx.trial_index() == 4 {
                        panic!("{FATAL_PANIC_PREFIX}sim-oracle failure: injected");
                    }
                    Ok(())
                },
            );
            match result {
                Err(SweepError::WorkerPanicked { payload, .. }) => {
                    assert!(payload.contains("sim-oracle failure"), "{payload}");
                }
                other => panic!("expected WorkerPanicked at {threads} threads, got {other:?}"),
            }
        }
    }

    #[test]
    fn uncontained_worker_panic_is_drained_and_reported() {
        let result = SweepRunner::new().with_threads(4).try_run_with_state(
            &[0u8; 4],
            4,
            9,
            || (),
            |_, ctx, _: &mut ()| {
                if ctx.trial_index() == 7 {
                    panic!("boom at trial 7");
                }
                Some(ctx.trial_index())
            },
        );
        match result {
            Err(SweepError::WorkerPanicked { payload, .. }) => {
                assert!(payload.contains("boom at trial 7"), "{payload}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }

        // The panicking wrapper keeps the legacy "sweep worker … panicked"
        // abort message.
        let caught = std::panic::catch_unwind(|| {
            SweepRunner::new()
                .with_threads(4)
                .run(&[0u8; 4], 4, 9, |_, ctx| {
                    if ctx.trial_index() == 7 {
                        panic!("boom at trial 7");
                    }
                    Some(ctx.trial_index())
                })
        })
        .unwrap_err();
        let text = payload_text(caught.as_ref());
        assert!(text.contains("sweep worker"), "{text}");
        assert!(text.contains("panicked"), "{text}");
    }

    fn checkpoint_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sdem_exec_{tag}_{}.jsonl", std::process::id()))
    }

    fn encode_u64(v: &u64) -> String {
        format!("{v:016x}")
    }

    fn decode_u64(s: &str) -> Option<u64> {
        u64::from_str_radix(s, 16).ok()
    }

    #[test]
    fn checkpointed_halt_then_resume_is_bit_identical() {
        let points: Vec<f64> = (1..=4).map(f64::from).collect();
        let path = checkpoint_path("resume");

        // Uninterrupted reference run (no checkpoint involved).
        let reference = SweepRunner::new()
            .with_threads(2)
            .run_quarantined(&points, 5, 0xC0DE, faulty_trial)
            .expect("no fatal error");

        // Interrupted run: the budget halts after 7 newly executed trials.
        let mut journal = CheckpointJournal::new(&path);
        let partial = SweepRunner::new()
            .with_threads(2)
            .with_trial_budget(7)
            .try_run_checkpointed_with_state(
                &points,
                5,
                0xC0DE,
                || (),
                |p, ctx, _: &mut ()| faulty_trial(p, ctx),
                encode_u64,
                decode_u64,
                &mut journal,
            )
            .expect("no fatal error");
        assert!(partial.is_partial());
        assert_eq!(partial.completed, 7);

        // Resume with a different thread count; the union must match the
        // uninterrupted run exactly.
        let mut journal = CheckpointJournal::resume(&path).expect("journal parses");
        assert_eq!(journal.preloaded(), 7);
        let resumed = SweepRunner::new()
            .with_threads(3)
            .try_run_checkpointed_with_state(
                &points,
                5,
                0xC0DE,
                || (),
                |p, ctx, _: &mut ()| faulty_trial(p, ctx),
                encode_u64,
                decode_u64,
                &mut journal,
            )
            .expect("no fatal error");
        assert!(!resumed.is_partial());
        assert_eq!(resumed.per_point, reference.per_point);
        assert_eq!(resumed.quarantine, reference.quarantine);
        assert_eq!(resumed.stats.quarantined, reference.stats.quarantined);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_grids() {
        let path = checkpoint_path("mismatch");
        let mut journal = CheckpointJournal::new(&path);
        SweepRunner::new()
            .with_threads(1)
            .try_run_checkpointed_with_state(
                &[1.0f64, 2.0],
                2,
                111,
                || (),
                |p, ctx, _: &mut ()| faulty_trial(p, ctx),
                encode_u64,
                decode_u64,
                &mut journal,
            )
            .expect("no fatal error");

        let mut journal = CheckpointJournal::resume(&path).expect("journal parses");
        let err = SweepRunner::new()
            .with_threads(1)
            .try_run_checkpointed_with_state(
                &[1.0f64, 2.0],
                2,
                222, // different grid seed
                || (),
                |p, ctx, _: &mut ()| faulty_trial(p, ctx),
                encode_u64,
                decode_u64,
                &mut journal,
            )
            .expect_err("grid seed mismatch must be rejected");
        assert!(
            matches!(err, SweepError::CheckpointMismatch { .. }),
            "{err}"
        );

        // Missing file is a checkpoint error, not a panic.
        let missing = CheckpointJournal::resume(checkpoint_path("missing"));
        assert!(matches!(missing, Err(SweepError::Checkpoint { .. })));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trial_budget_zero_means_unlimited() {
        let outcome = SweepRunner::new()
            .with_trial_budget(0)
            .run_quarantined(&[1.0f64], 4, 3, |_, ctx| Ok::<_, TrialFailure>(ctx.seed(0)))
            .expect("no fatal error");
        assert!(!outcome.is_partial());
        assert_eq!(outcome.completed, 4);
    }
}
