//! The parallel sweep evaluation engine for SDEM experiments.
//!
//! The paper's evaluation (Figs. 6–7) is thousands of independent
//! `(task set × utilization × scheme)` trials. This crate fans such a grid
//! across worker threads while keeping the results **bit-identical to a
//! serial run**:
//!
//! * **Deterministic seeding** — every trial owns an independent seed
//!   stream derived from `(grid_seed, trial_index, attempt)` through
//!   [`sdem_prng::SplitMix64`], so no trial's randomness depends on
//!   scheduling order or thread count.
//! * **Lock-free reduction** — workers pull trial indices from one atomic
//!   cursor and buffer results locally; buffers are merged and sorted by
//!   trial index after the join. No mutex is held while trials run.
//! * **Bounded in-flight memory** — at any instant each worker holds at
//!   most one running trial; the only growing allocation is the result
//!   vector the caller asked for.
//!
//! The entry point is [`SweepRunner::run`], which takes the grid points,
//! the replication count and a trial closure, and returns the per-point
//! results plus wall-clock/throughput statistics ([`SweepStats`]).
//!
//! # Examples
//!
//! ```
//! use sdem_exec::SweepRunner;
//!
//! // 3 grid points × 4 replications, trial = seeded pseudo-measurement.
//! let points = [1.0f64, 2.0, 3.0];
//! let run = |threads: usize| {
//!     SweepRunner::new()
//!         .with_threads(threads)
//!         .run(&points, 4, 0xD00D, |&p, ctx| Some(p * ctx.seed(0) as f64))
//! };
//! let serial = run(1);
//! let parallel = run(4);
//! assert_eq!(serial.per_point, parallel.per_point); // bit-identical
//! assert_eq!(serial.stats.trials, 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdem_prng::SplitMix64;

/// Relative tolerance [`SweepRunner::with_oracle`] configures when none is
/// given explicitly.
pub const DEFAULT_ORACLE_TOLERANCE: f64 = 1e-6;

/// The identity of one trial inside a sweep, carrying its deterministic
/// seed stream.
///
/// Trials are numbered row-major: `trial_index = point * replications +
/// replicate`. The seed for attempt `a` is a pure function of
/// `(grid_seed, trial_index, a)` — independent of which worker runs the
/// trial and of how many workers exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialCtx {
    grid_seed: u64,
    point: usize,
    replicate: usize,
    trial_index: usize,
    /// Sim-oracle tolerance as IEEE-754 bits (`None` = oracle off); bits
    /// rather than `f64` so the context stays `Copy + Eq`.
    oracle_tol_bits: Option<u64>,
}

impl TrialCtx {
    /// Builds the context for one `(point, replicate)` cell (oracle off).
    pub fn new(grid_seed: u64, point: usize, replicate: usize, replications: usize) -> Self {
        Self {
            grid_seed,
            point,
            replicate,
            trial_index: point * replications + replicate,
            oracle_tol_bits: None,
        }
    }

    /// Returns a copy asking the trial to cross-check analytic energies
    /// against the simulator within the given relative tolerance.
    #[must_use]
    pub fn with_oracle_tolerance(mut self, rel_tol: f64) -> Self {
        self.oracle_tol_bits = Some(rel_tol.to_bits());
        self
    }

    /// The sim-oracle tolerance the sweep was configured with, or `None`
    /// when the oracle is off. Trial closures that compute both an analytic
    /// and a metered energy should compare them within this tolerance and
    /// fail loudly on divergence.
    #[inline]
    pub fn oracle_tolerance(&self) -> Option<f64> {
        self.oracle_tol_bits.map(f64::from_bits)
    }

    /// Index of the grid point this trial belongs to.
    #[inline]
    pub fn point(&self) -> usize {
        self.point
    }

    /// Replicate number within the point (`0..replications`).
    #[inline]
    pub fn replicate(&self) -> usize {
        self.replicate
    }

    /// Flat trial index across the whole grid.
    #[inline]
    pub fn trial_index(&self) -> usize {
        self.trial_index
    }

    /// The deterministic seed for retry `attempt` of this trial. Trials
    /// that resample on infeasible instances draw `seed(0)`, `seed(1)`, …
    /// — a private stream that never collides with other trials'.
    pub fn seed(&self, attempt: u64) -> u64 {
        SplitMix64::mix(&[self.grid_seed, self.trial_index as u64, attempt])
    }

    /// An infinite iterator over this trial's seed stream.
    pub fn seeds(&self) -> impl Iterator<Item = u64> + '_ {
        (0u64..).map(|a| self.seed(a))
    }
}

/// A progress snapshot delivered to the observer callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Trials finished so far (success or failure).
    pub completed: usize,
    /// Total trials in the grid.
    pub total: usize,
}

/// Wall-clock and throughput statistics of one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Grid points evaluated.
    pub points: usize,
    /// Replications requested per point.
    pub replications: usize,
    /// Total trials executed (`points × replications`).
    pub trials: usize,
    /// Trials whose closure returned `None` (e.g. no feasible seed).
    pub failures: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of the sweep.
    pub wall: Duration,
    /// `trials / wall` in trials per second.
    pub trials_per_sec: f64,
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} trials ({} points × {} reps, {} failed) in {:.2} s on {} thread(s) — {:.1} trials/s",
            self.trials,
            self.points,
            self.replications,
            self.failures,
            self.wall.as_secs_f64(),
            self.threads,
            self.trials_per_sec,
        )
    }
}

/// The result of [`SweepRunner::run`]: per-point results plus statistics.
#[derive(Debug, Clone)]
pub struct SweepOutcome<T> {
    /// `per_point[p]` holds the successful replicate results of point `p`
    /// in replicate order (failed replicates are skipped, preserving the
    /// order of the rest).
    pub per_point: Vec<Vec<T>>,
    /// Wall-clock/throughput statistics.
    pub stats: SweepStats,
}

type ProgressFn = dyn Fn(SweepProgress) + Send + Sync;

/// The parallel sweep engine. Construct, optionally bound the thread
/// count or attach a progress observer, then [`run`](Self::run) a grid.
#[derive(Clone, Default)]
pub struct SweepRunner {
    threads: Option<NonZeroUsize>,
    progress: Option<Arc<ProgressFn>>,
    oracle_tol_bits: Option<u64>,
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("threads", &self.threads)
            .field("progress", &self.progress.is_some())
            .field("oracle_tolerance", &self.oracle_tolerance())
            .finish()
    }
}

impl SweepRunner {
    /// A runner that uses every available hardware thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the worker count; `0` restores the hardware default.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// Attaches a progress observer, called once per finished trial from
    /// worker threads (keep it cheap and thread-safe).
    #[must_use]
    pub fn with_progress(
        mut self,
        observer: impl Fn(SweepProgress) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(observer));
        self
    }

    /// Enables (with [`DEFAULT_ORACLE_TOLERANCE`]) or disables the
    /// sim-oracle cross-check every trial's [`TrialCtx`] advertises.
    #[must_use]
    pub fn with_oracle(mut self, enabled: bool) -> Self {
        self.oracle_tol_bits = enabled.then_some(DEFAULT_ORACLE_TOLERANCE.to_bits());
        self
    }

    /// Enables the sim-oracle with an explicit relative tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `rel_tol` is negative or non-finite.
    #[must_use]
    pub fn with_oracle_tolerance(mut self, rel_tol: f64) -> Self {
        assert!(
            rel_tol.is_finite() && rel_tol >= 0.0,
            "oracle tolerance must be finite and non-negative"
        );
        self.oracle_tol_bits = Some(rel_tol.to_bits());
        self
    }

    /// The configured oracle tolerance, or `None` when the oracle is off.
    #[inline]
    pub fn oracle_tolerance(&self) -> Option<f64> {
        self.oracle_tol_bits.map(f64::from_bits)
    }

    /// The worker count a grid of `total` trials would use.
    pub fn resolved_threads(&self, total: usize) -> usize {
        let hw = self
            .threads
            .map(NonZeroUsize::get)
            .or_else(|| {
                std::thread::available_parallelism()
                    .ok()
                    .map(NonZeroUsize::get)
            })
            .unwrap_or(1);
        hw.min(total.max(1))
    }

    /// Evaluates `trial` over every `(point, replicate)` cell of the grid,
    /// fanning cells across worker threads.
    ///
    /// `trial` receives the grid point and the trial's [`TrialCtx`]; it
    /// returns `None` to record a failed trial (e.g. when no feasible seed
    /// exists within its retry budget). Results are regrouped per point in
    /// replicate order, so the outcome is **identical for any thread
    /// count** as long as `trial` derives all randomness from the context.
    pub fn run<P, T, F>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        trial: F,
    ) -> SweepOutcome<T>
    where
        P: Sync,
        T: Send,
        F: Fn(&P, &TrialCtx) -> Option<T> + Sync,
    {
        self.run_with_state(
            points,
            replications,
            grid_seed,
            || (),
            |p, ctx, _: &mut ()| trial(p, ctx),
        )
    }

    /// Like [`run`](Self::run), but each worker thread owns a mutable
    /// state value created by `init` and passed to every trial it
    /// executes. This is how callers thread a reusable scratch arena
    /// (e.g. `sdem_types::Workspace`) through the sweep: one workspace
    /// per worker, reused across that worker's trials, no sharing and no
    /// locking.
    ///
    /// The state must not influence results — trials must stay pure
    /// functions of `(point, ctx)` — or the thread-count invariance
    /// guarantee breaks. A scratch arena satisfies this by construction:
    /// buffers are handed out empty.
    pub fn run_with_state<P, T, S, I, F>(
        &self,
        points: &[P],
        replications: usize,
        grid_seed: u64,
        init: I,
        trial: F,
    ) -> SweepOutcome<T>
    where
        P: Sync,
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&P, &TrialCtx, &mut S) -> Option<T> + Sync,
    {
        let total = points.len() * replications;
        let threads = self.resolved_threads(total);
        let started = Instant::now();

        let run_one = |flat: usize, state: &mut S| -> (usize, Option<T>) {
            let (point, replicate) = (flat / replications.max(1), flat % replications.max(1));
            let mut ctx = TrialCtx::new(grid_seed, point, replicate, replications);
            if let Some(bits) = self.oracle_tol_bits {
                ctx = ctx.with_oracle_tolerance(f64::from_bits(bits));
            }
            (flat, trial(&points[point], &ctx, state))
        };

        let completed = AtomicUsize::new(0);
        let observe = |completed: &AtomicUsize| {
            if let Some(cb) = &self.progress {
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                cb(SweepProgress {
                    completed: done,
                    total,
                });
            }
        };

        let mut flat: Vec<(usize, Option<T>)> = if threads <= 1 || total <= 1 {
            let mut state = init();
            (0..total)
                .map(|i| {
                    let r = run_one(i, &mut state);
                    observe(&completed);
                    r
                })
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let mut merged = Vec::with_capacity(total);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut state = init();
                            let mut local = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= total {
                                    break;
                                }
                                local.push(run_one(i, &mut state));
                                observe(&completed);
                            }
                            local
                        })
                    })
                    .collect();
                for handle in handles {
                    merged.extend(handle.join().expect("sweep worker panicked"));
                }
            });
            merged
        };
        flat.sort_unstable_by_key(|&(i, _)| i);

        let failures = flat.iter().filter(|(_, r)| r.is_none()).count();
        let mut per_point: Vec<Vec<T>> = (0..points.len())
            .map(|_| Vec::with_capacity(replications))
            .collect();
        for (i, result) in flat {
            if let Some(r) = result {
                per_point[i / replications.max(1)].push(r);
            }
        }

        let wall = started.elapsed();
        let secs = wall.as_secs_f64();
        SweepOutcome {
            per_point,
            stats: SweepStats {
                points: points.len(),
                replications,
                trials: total,
                failures,
                threads,
                wall,
                trials_per_sec: if secs > 0.0 { total as f64 / secs } else { 0.0 },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};

    fn measurement(point: &f64, ctx: &TrialCtx) -> Option<f64> {
        // Simulate "infeasible seed" resampling: reject attempt 0 for odd
        // trial indices so the retry path is exercised.
        let attempt = u64::from(ctx.trial_index() % 2 == 1);
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed(attempt));
        Some(point * rng.gen_range(0.0..1.0))
    }

    #[test]
    fn outcome_is_thread_count_invariant() {
        let points: Vec<f64> = (1..=7).map(f64::from).collect();
        let baseline = SweepRunner::new()
            .with_threads(1)
            .run(&points, 5, 99, measurement);
        for threads in [2, 4, 8] {
            let parallel =
                SweepRunner::new()
                    .with_threads(threads)
                    .run(&points, 5, 99, measurement);
            assert_eq!(baseline.per_point, parallel.per_point, "{threads} threads");
        }
    }

    #[test]
    fn seeds_are_unique_across_trials_and_attempts() {
        let mut seen = std::collections::HashSet::new();
        for point in 0..16 {
            for replicate in 0..16 {
                let ctx = TrialCtx::new(7, point, replicate, 16);
                for attempt in 0..4 {
                    assert!(seen.insert(ctx.seed(attempt)), "seed collision");
                }
            }
        }
        // A different grid seed shifts every stream.
        let a = TrialCtx::new(7, 0, 0, 16).seed(0);
        let b = TrialCtx::new(8, 0, 0, 16).seed(0);
        assert_ne!(a, b);
    }

    #[test]
    fn per_worker_state_is_reused_and_results_stay_invariant() {
        let points: Vec<f64> = (1..=6).map(f64::from).collect();
        // The state is a scratch Vec each trial fills and drains — results
        // must not depend on it, and the outcome must stay thread-count
        // invariant.
        let run = |threads: usize| {
            SweepRunner::new().with_threads(threads).run_with_state(
                &points,
                4,
                42,
                Vec::<f64>::new,
                |&p, ctx, scratch| {
                    scratch.push(p);
                    let r = p * ctx.seed(0) as f64;
                    scratch.clear();
                    Some(r)
                },
            )
        };
        let serial = run(1);
        for threads in [2, 8] {
            assert_eq!(
                serial.per_point,
                run(threads).per_point,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn failures_are_counted_and_skipped() {
        let points = [0usize, 1, 2];
        let outcome = SweepRunner::new()
            .with_threads(2)
            .run(&points, 4, 0, |&p, ctx| {
                // Point 1 always fails; others succeed.
                (p != 1).then_some(ctx.replicate())
            });
        assert_eq!(outcome.stats.failures, 4);
        assert_eq!(outcome.per_point[0], vec![0, 1, 2, 3]);
        assert!(outcome.per_point[1].is_empty());
        assert_eq!(outcome.per_point[2], vec![0, 1, 2, 3]);
    }

    #[test]
    fn progress_reaches_total() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let outcome = SweepRunner::new()
            .with_threads(3)
            .with_progress(move |p| {
                seen2.fetch_max(p.completed, Ordering::Relaxed);
                assert!(p.completed <= p.total);
            })
            .run(&[1, 2, 3, 4], 3, 5, |&p, _| Some(p));
        assert_eq!(seen.load(Ordering::Relaxed), 12);
        assert_eq!(outcome.stats.trials, 12);
        assert!(outcome.stats.trials_per_sec > 0.0);
    }

    #[test]
    fn empty_grid_is_fine() {
        let outcome = SweepRunner::new().run(&[] as &[f64], 3, 0, |_, _| Some(0.0));
        assert!(outcome.per_point.is_empty());
        assert_eq!(outcome.stats.trials, 0);
        let outcome = SweepRunner::new().run(&[1.0], 0, 0, |_, _| Some(0.0));
        assert_eq!(outcome.per_point.len(), 1);
        assert!(outcome.per_point[0].is_empty());
    }

    #[test]
    fn oracle_tolerance_reaches_every_trial() {
        // Off by default.
        let outcome = SweepRunner::new().run(&[0u8], 2, 0, |_, ctx| ctx.oracle_tolerance());
        assert_eq!(outcome.per_point[0], Vec::<f64>::new());
        assert_eq!(outcome.stats.failures, 2);

        // with_oracle(true) advertises the default tolerance to all trials.
        let outcome =
            SweepRunner::new()
                .with_oracle(true)
                .with_threads(2)
                .run(&[0u8, 1], 3, 0, |_, ctx| ctx.oracle_tolerance());
        for point in &outcome.per_point {
            assert_eq!(point.as_slice(), &[DEFAULT_ORACLE_TOLERANCE; 3]);
        }

        // Explicit tolerance survives the bit round-trip exactly; turning
        // the oracle back off clears it.
        let runner = SweepRunner::new().with_oracle_tolerance(3.5e-9);
        assert_eq!(runner.oracle_tolerance(), Some(3.5e-9));
        assert_eq!(runner.with_oracle(false).oracle_tolerance(), None);
    }

    #[test]
    fn oracle_contexts_stay_copy_and_eq() {
        let a = TrialCtx::new(1, 0, 0, 4).with_oracle_tolerance(1e-6);
        let b = TrialCtx::new(1, 0, 0, 4).with_oracle_tolerance(1e-6);
        assert_eq!(a, b);
        assert_ne!(a, TrialCtx::new(1, 0, 0, 4));
        assert_eq!(a.oracle_tolerance(), Some(1e-6));
        // Seeds are unaffected by the oracle flag.
        assert_eq!(a.seed(0), TrialCtx::new(1, 0, 0, 4).seed(0));
    }

    #[test]
    fn stats_display_is_informative() {
        let outcome = SweepRunner::new()
            .with_threads(2)
            .run(&[1.0, 2.0], 2, 0, |&p, _| Some(p));
        let s = outcome.stats.to_string();
        assert!(s.contains("4 trials"));
        assert!(s.contains("trials/s"));
    }
}
