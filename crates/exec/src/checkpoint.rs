//! Sweep checkpoint journal: a line-oriented log of finished trials.
//!
//! The journal is written incrementally while a quarantined sweep runs
//! (one line per finished trial, flushed immediately) so a killed sweep
//! can be resumed with `--resume`: already-journaled trials are loaded
//! back verbatim and only the remainder is executed. Because per-trial
//! seeds are derived — never sequential — the resumed run is
//! bit-identical to an uninterrupted one regardless of where the
//! original was interrupted or how many workers either run used.
//!
//! File format (one JSON object per line, written by this module only):
//!
//! ```text
//! {"sdem_checkpoint":1,"grid_seed":"0x…","points":P,"replications":R}
//! {"trial":7,"ok":"<domain-encoded result>"}
//! {"trial":9,"fault":{…quarantine record…}}
//! ```
//!
//! Lines that fail to parse (e.g. a torn tail from a hard kill) are
//! skipped on resume; the affected trial simply reruns.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::fault::{
    json_hex_u64, json_str, json_string, json_usize, QuarantineRecord, SweepError, TrialFailure,
};
use crate::Slot;

/// Magic first-line key identifying a sweep checkpoint file.
const HEADER_KEY: &str = "sdem_checkpoint";
/// Checkpoint format version this build reads and writes.
const FORMAT_VERSION: usize = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    grid_seed: u64,
    points: usize,
    replications: usize,
}

impl Header {
    fn to_line(self) -> String {
        format!(
            "{{\"{HEADER_KEY}\":{FORMAT_VERSION},\"grid_seed\":\"{:#018x}\",\"points\":{},\"replications\":{}}}",
            self.grid_seed, self.points, self.replications
        )
    }

    fn from_line(line: &str) -> Option<Self> {
        if json_usize(line, HEADER_KEY)? != FORMAT_VERSION {
            return None;
        }
        Some(Self {
            grid_seed: json_hex_u64(line, "grid_seed")?,
            points: json_usize(line, "points")?,
            replications: json_usize(line, "replications")?,
        })
    }
}

/// One journaled trial, as loaded back on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Entry {
    /// A successful trial with its domain-encoded result.
    Done(String),
    /// A quarantined trial with its full record.
    Fault(QuarantineRecord),
}

fn entry_from_line(line: &str) -> Option<(usize, Entry)> {
    let trial = json_usize(line, "trial")?;
    if let Some(encoded) = json_str(line, "ok") {
        return Some((trial, Entry::Done(encoded)));
    }
    let (_, rest) = line.split_once("\"fault\":")?;
    let record = QuarantineRecord::from_json_line(rest)?;
    Some((trial, Entry::Fault(record)))
}

/// Incremental journal of finished sweep trials, for checkpoint/resume.
///
/// Create a fresh journal with [`CheckpointJournal::new`] (truncates any
/// existing file when the sweep starts) or load a previous run's journal
/// with [`CheckpointJournal::resume`]. Pass it to
/// `SweepRunner::try_run_checkpointed_with_state`, which journals every
/// newly finished trial and skips the preloaded ones.
#[derive(Debug)]
pub struct CheckpointJournal {
    path: PathBuf,
    resume: bool,
    header: Option<Header>,
    entries: Vec<(usize, Entry)>,
    writer: Option<Mutex<BufWriter<File>>>,
    io_error: Mutex<Option<String>>,
}

impl CheckpointJournal {
    /// A fresh journal at `path`. The file is created (truncating any
    /// previous contents) when the sweep starts.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            resume: false,
            header: None,
            entries: Vec::new(),
            writer: None,
            io_error: Mutex::new(None),
        }
    }

    /// Loads the journal of an interrupted sweep from `path`.
    ///
    /// Unparsable lines (torn tails from a hard kill) are skipped — the
    /// corresponding trials rerun. Fails if the file cannot be read or
    /// does not start with a checkpoint header.
    pub fn resume(path: impl Into<PathBuf>) -> Result<Self, SweepError> {
        let path = path.into();
        let err = |detail: String| SweepError::Checkpoint {
            path: path.display().to_string(),
            detail,
        };
        let file = File::open(&path).map_err(|e| err(format!("cannot open: {e}")))?;
        let mut lines = BufReader::new(file).lines();
        let first = match lines.next() {
            Some(Ok(line)) => line,
            Some(Err(e)) => return Err(err(format!("cannot read: {e}"))),
            None => return Err(err("file is empty".into())),
        };
        let header = Header::from_line(&first)
            .ok_or_else(|| err("missing or unreadable checkpoint header".into()))?;
        let mut entries = Vec::new();
        for line in lines {
            let line = line.map_err(|e| err(format!("cannot read: {e}")))?;
            if let Some(entry) = entry_from_line(&line) {
                entries.push(entry);
            }
        }
        Ok(Self {
            path,
            resume: true,
            header: Some(header),
            entries,
            writer: None,
            io_error: Mutex::new(None),
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of finished trials loaded from the journal on resume.
    pub fn preloaded(&self) -> usize {
        self.entries.len()
    }

    /// Validates the journal against the sweep's dimensions, converts
    /// loaded entries into preloaded slots, and opens the file for
    /// appending (creating it with a header when fresh).
    pub(crate) fn prepare<T>(
        &mut self,
        grid_seed: u64,
        points: usize,
        replications: usize,
        decode: &(impl Fn(&str) -> Option<T> + ?Sized),
    ) -> Result<Vec<(usize, Slot<T>)>, SweepError> {
        let header = Header {
            grid_seed,
            points,
            replications,
        };
        let mut slots = Vec::with_capacity(self.entries.len());
        if self.resume {
            let stored = self.header.expect("resumed journal always has a header");
            if stored != header {
                return Err(SweepError::CheckpointMismatch {
                    detail: format!(
                        "checkpoint recorded grid_seed {:#x}, {} points × {} reps; \
                         this sweep has grid_seed {:#x}, {} points × {} reps",
                        stored.grid_seed,
                        stored.points,
                        stored.replications,
                        header.grid_seed,
                        header.points,
                        header.replications
                    ),
                });
            }
            for (trial, entry) in self.entries.drain(..) {
                let slot = match entry {
                    Entry::Done(encoded) => {
                        let value = decode(&encoded).ok_or_else(|| SweepError::Checkpoint {
                            path: self.path.display().to_string(),
                            detail: format!("trial {trial}: undecodable journaled result"),
                        })?;
                        Slot::Done(value)
                    }
                    Entry::Fault(record) => {
                        let mut failure =
                            TrialFailure::new(record.kind, record.detail).with_seed(record.seed);
                        failure.config = record.config;
                        Slot::Fault(failure)
                    }
                };
                slots.push((trial, slot));
            }
            let file = OpenOptions::new()
                .append(true)
                .open(&self.path)
                .map_err(|e| SweepError::Checkpoint {
                    path: self.path.display().to_string(),
                    detail: format!("cannot reopen for append: {e}"),
                })?;
            self.writer = Some(Mutex::new(BufWriter::new(file)));
        } else {
            let file = File::create(&self.path).map_err(|e| SweepError::Checkpoint {
                path: self.path.display().to_string(),
                detail: format!("cannot create: {e}"),
            })?;
            let mut writer = BufWriter::new(file);
            writeln!(writer, "{}", header.to_line())
                .and_then(|()| writer.flush())
                .map_err(|e| SweepError::Checkpoint {
                    path: self.path.display().to_string(),
                    detail: format!("cannot write header: {e}"),
                })?;
            self.header = Some(header);
            self.writer = Some(Mutex::new(writer));
        }
        Ok(slots)
    }

    /// Journals a successful trial. IO errors are latched (the sweep
    /// keeps running) and surfaced by [`Self::take_error`] at the end.
    pub(crate) fn append_ok(&self, trial: usize, encoded: &str) {
        self.append_line(&format!(
            "{{\"trial\":{trial},\"ok\":{}}}",
            json_string(encoded)
        ));
    }

    /// Journals a quarantined trial.
    pub(crate) fn append_fault(&self, trial: usize, record: &QuarantineRecord) {
        self.append_line(&format!(
            "{{\"trial\":{trial},\"fault\":{}}}",
            record.to_json_line()
        ));
    }

    fn append_line(&self, line: &str) {
        let Some(writer) = &self.writer else { return };
        let mut w = writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let outcome = writeln!(w, "{line}").and_then(|()| w.flush());
        if let Err(e) = outcome {
            let mut latch = self
                .io_error
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            latch.get_or_insert_with(|| e.to_string());
        }
    }

    /// First journaling IO error hit during the sweep, if any.
    pub(crate) fn take_error(&self) -> Option<SweepError> {
        let mut latch = self
            .io_error
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        latch.take().map(|detail| SweepError::Checkpoint {
            path: self.path.display().to_string(),
            detail: format!("write failed: {detail}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = Header {
            grid_seed: 0xF17_A000,
            points: 3,
            replications: 5,
        };
        assert_eq!(Header::from_line(&h.to_line()), Some(h));
        assert_eq!(Header::from_line("{\"trial\":1,\"ok\":\"x\"}"), None);
    }

    #[test]
    fn entries_round_trip_and_torn_lines_are_skipped() {
        let ok = "{\"trial\":4,\"ok\":\"dead beef\"}";
        assert_eq!(
            entry_from_line(ok),
            Some((4, Entry::Done("dead beef".into())))
        );
        let record = QuarantineRecord {
            trial_index: 9,
            point: 1,
            replicate: 4,
            grid_seed: 3,
            seed: 11,
            kind: "solver-panic".into(),
            detail: "boom".into(),
            config: "--x 1".into(),
        };
        let fault = format!("{{\"trial\":9,\"fault\":{}}}", record.to_json_line());
        assert_eq!(entry_from_line(&fault), Some((9, Entry::Fault(record))));
        assert_eq!(entry_from_line("{\"trial\":9,\"ok\":\"tor"), None);
        assert_eq!(entry_from_line(""), None);
    }
}
