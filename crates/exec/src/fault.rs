//! Structured per-trial failures and fatal sweep errors.
//!
//! The sweep engine knows nothing about schedulers or energy models, so
//! the quarantine layer speaks in concrete, string-based records: a
//! [`TrialFailure`] is what a trial closure returns (or what the panic
//! containment synthesizes), and a [`QuarantineRecord`] is the
//! deterministic, replayable line written to `quarantine.jsonl`. Domain
//! layers (e.g. `sdem-bench`) convert their typed error taxonomies into
//! [`TrialFailure`]s at the sweep boundary.

use core::fmt;

use sdem_types::ErrorKind;

/// Panic-message prefix that escalates a contained panic into a fatal
/// sweep abort.
///
/// The quarantine engine catches every panic a trial raises and records
/// it as a [`QuarantineRecord`] — except panics whose string payload
/// starts with this prefix, which are re-raised so the whole sweep fails
/// loudly ([`SweepError::WorkerPanicked`]). Domain layers use it for
/// failures that must never be swallowed per-trial, e.g. a fail-fast
/// sim-oracle divergence.
pub const FATAL_PANIC_PREFIX: &str = "sdem-fatal: ";

/// Renders a panic payload as text (`&str` and `String` payloads pass
/// through; anything else becomes a placeholder).
pub fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why one trial failed, as reported to the quarantine engine.
///
/// `kind` is a stable machine-readable class (`"solver-panic"`,
/// `"oracle-divergence"`, `"non-finite-energy"`, …); `detail` is the
/// human-readable message. `seed` names the exact SplitMix64 seed of the
/// failing attempt when the trial layer knows it (the engine falls back
/// to the trial's `seed(0)`), and `config` is a free-form descriptor —
/// typically `sdem-cli repro` arguments — that makes the trial
/// replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// Stable machine-readable failure class.
    pub kind: String,
    /// Human-readable detail (panic payload, divergence values, …).
    pub detail: String,
    /// Seed of the exact failing attempt, when known.
    pub seed: Option<u64>,
    /// Replay descriptor (e.g. a `sdem-cli repro` argument string).
    pub config: String,
}

impl TrialFailure {
    /// A failure of the given class with a human-readable detail.
    pub fn new(kind: impl Into<String>, detail: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            detail: detail.into(),
            seed: None,
            config: String::new(),
        }
    }

    /// A failure classified by the workspace-wide [`ErrorKind`] taxonomy
    /// (`kind` is its stable string code).
    pub fn of(kind: ErrorKind, detail: impl Into<String>) -> Self {
        Self::new(kind.code(), detail)
    }

    /// A failure synthesized from a caught panic payload.
    pub fn panic(payload: impl Into<String>) -> Self {
        Self::of(ErrorKind::SolverPanic, payload)
    }

    /// Decodes `kind` back into the shared taxonomy; foreign or
    /// free-form kinds fold to [`ErrorKind::Internal`].
    pub fn error_kind(&self) -> ErrorKind {
        ErrorKind::from_code(&self.kind).unwrap_or(ErrorKind::Internal)
    }

    /// Returns a copy naming the exact seed of the failing attempt.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Returns a copy carrying a replay descriptor.
    #[must_use]
    pub fn with_config(mut self, config: impl Into<String>) -> Self {
        self.config = config.into();
        self
    }
}

/// One quarantined trial: everything needed to count, diagnose and
/// replay it.
///
/// Records serialize to single JSON lines ([`Self::to_json_line`]) and
/// the serialization is a pure function of the record, so a quarantine
/// file is byte-identical for any worker-thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Flat trial index across the grid.
    pub trial_index: usize,
    /// Grid-point index of the trial.
    pub point: usize,
    /// Replicate number within the point.
    pub replicate: usize,
    /// The sweep's grid seed.
    pub grid_seed: u64,
    /// The exact SplitMix64 seed of the failing attempt.
    pub seed: u64,
    /// Stable machine-readable failure class.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// Replay descriptor (e.g. `sdem-cli repro` arguments).
    pub config: String,
}

impl QuarantineRecord {
    /// Serializes the record as one JSON object on one line.
    ///
    /// Seeds are emitted as fixed-width hex strings (`"0x…"`): JSON
    /// numbers cannot carry a full `u64` exactly.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"trial\":{},\"point\":{},\"replicate\":{},\"grid_seed\":\"{:#018x}\",\
             \"seed\":\"{:#018x}\",\"kind\":{},\"detail\":{},\"config\":{}}}",
            self.trial_index,
            self.point,
            self.replicate,
            self.grid_seed,
            self.seed,
            json_string(&self.kind),
            json_string(&self.detail),
            json_string(&self.config),
        )
    }

    /// Decodes the record's `kind` into the shared [`ErrorKind`]
    /// taxonomy; unknown codes fold to [`ErrorKind::Internal`].
    pub fn error_kind(&self) -> ErrorKind {
        ErrorKind::from_code(&self.kind).unwrap_or(ErrorKind::Internal)
    }

    /// Parses a record from a line produced by [`Self::to_json_line`].
    pub fn from_json_line(line: &str) -> Option<Self> {
        Some(Self {
            trial_index: json_usize(line, "trial")?,
            point: json_usize(line, "point")?,
            replicate: json_usize(line, "replicate")?,
            grid_seed: json_hex_u64(line, "grid_seed")?,
            seed: json_hex_u64(line, "seed")?,
            kind: json_str(line, "kind")?,
            detail: json_str(line, "detail")?,
            config: json_str(line, "config")?,
        })
    }
}

impl fmt::Display for QuarantineRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trial {} (point {}, replicate {}) seed {:#x}: {}: {}",
            self.trial_index, self.point, self.replicate, self.seed, self.kind, self.detail
        )
    }
}

/// Fatal, sweep-level errors (as opposed to per-trial quarantines).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SweepError {
    /// A worker thread died with an uncontained panic. The engine joins
    /// every remaining worker before reporting, so no results are
    /// merged from a half-finished sweep.
    WorkerPanicked {
        /// Index of the first worker observed panicking.
        worker: usize,
        /// The panic payload, rendered as text.
        payload: String,
    },
    /// A checkpoint file could not be read, written or parsed.
    Checkpoint {
        /// Path of the offending checkpoint file.
        path: String,
        /// What went wrong.
        detail: String,
    },
    /// A resumed checkpoint was recorded for a different sweep (grid
    /// seed or grid shape mismatch).
    CheckpointMismatch {
        /// What differs between the checkpoint and the requested sweep.
        detail: String,
    },
}

impl SweepError {
    /// Classifies this fatal error in the workspace-wide [`ErrorKind`]
    /// taxonomy (shared with quarantine records and the wire protocol).
    pub const fn kind(&self) -> ErrorKind {
        match self {
            Self::WorkerPanicked { .. } => ErrorKind::WorkerPanic,
            Self::Checkpoint { .. } | Self::CheckpointMismatch { .. } => ErrorKind::CheckpointError,
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkerPanicked { worker, payload } => {
                write!(f, "sweep worker {worker} panicked: {payload}")
            }
            Self::Checkpoint { path, detail } => {
                write!(f, "checkpoint `{path}`: {detail}")
            }
            Self::CheckpointMismatch { detail } => {
                write!(f, "checkpoint does not match this sweep: {detail}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Escapes and quotes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Locates the raw value text following `"key":` in one of our own
/// JSON lines. Returns the remainder of the line starting at the value.
fn value_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    Some(&line[start..])
}

/// Parses an unsigned decimal field from one of our own JSON lines.
pub(crate) fn json_usize(line: &str, key: &str) -> Option<usize> {
    let rest = value_after(line, key)?;
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Parses a `"0x…"` hex string field from one of our own JSON lines.
pub(crate) fn json_hex_u64(line: &str, key: &str) -> Option<u64> {
    let s = json_str(line, key)?;
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// Parses a quoted, escaped string field from one of our own JSON lines.
pub(crate) fn json_str(line: &str, key: &str) -> Option<String> {
    let rest = value_after(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let record = QuarantineRecord {
            trial_index: 42,
            point: 8,
            replicate: 2,
            grid_seed: 0xF17_A000,
            seed: u64::MAX - 3,
            kind: "solver-panic".into(),
            detail: "weird \"quoted\"\npayload\twith\\slashes".into(),
            config: "--kind synthetic --tasks 10 --x-ms 400".into(),
        };
        let line = record.to_json_line();
        assert!(!line.contains('\n'), "must stay one line: {line}");
        assert_eq!(QuarantineRecord::from_json_line(&line), Some(record));
    }

    #[test]
    fn serialization_is_deterministic() {
        let r = QuarantineRecord {
            trial_index: 1,
            point: 0,
            replicate: 1,
            grid_seed: 7,
            seed: 9,
            kind: "k".into(),
            detail: "d".into(),
            config: String::new(),
        };
        let line = r.to_json_line();
        assert_eq!(QuarantineRecord::from_json_line(&line), Some(r));
        assert!(line.contains("\"seed\":\"0x0000000000000009\""));
    }

    #[test]
    fn garbage_lines_do_not_parse() {
        assert_eq!(QuarantineRecord::from_json_line(""), None);
        assert_eq!(QuarantineRecord::from_json_line("{\"trial\":1}"), None);
        assert_eq!(QuarantineRecord::from_json_line("not json at all"), None);
    }

    #[test]
    fn failure_builders_compose() {
        let f = TrialFailure::panic("boom")
            .with_seed(5)
            .with_config("--x 1");
        assert_eq!(f.kind, "solver-panic");
        assert_eq!(f.seed, Some(5));
        assert_eq!(f.config, "--x 1");
        let e = SweepError::WorkerPanicked {
            worker: 3,
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("sweep worker 3 panicked"));
    }

    #[test]
    fn kinds_round_trip_through_the_shared_taxonomy() {
        let f = TrialFailure::of(ErrorKind::OracleDivergence, "d");
        assert_eq!(f.kind, "oracle-divergence");
        assert_eq!(f.error_kind(), ErrorKind::OracleDivergence);
        // Free-form kinds written by domain layers fold to Internal.
        assert_eq!(
            TrialFailure::new("ad-hoc", "d").error_kind(),
            ErrorKind::Internal
        );
        let r = QuarantineRecord {
            trial_index: 0,
            point: 0,
            replicate: 0,
            grid_seed: 0,
            seed: 0,
            kind: "solver-panic".into(),
            detail: String::new(),
            config: String::new(),
        };
        assert_eq!(r.error_kind(), ErrorKind::SolverPanic);
        assert_eq!(
            SweepError::CheckpointMismatch { detail: "d".into() }.kind(),
            ErrorKind::CheckpointError
        );
        assert_eq!(
            SweepError::WorkerPanicked {
                worker: 0,
                payload: "p".into()
            }
            .kind(),
            ErrorKind::WorkerPanic
        );
    }

    #[test]
    fn payload_text_handles_common_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("static message {}", 1 + 1)).unwrap_err();
        assert_eq!(payload_text(caught.as_ref()), "static message 2");
    }
}
