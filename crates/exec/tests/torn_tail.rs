//! Torn-tail resilience of the checkpoint journal, tested directly.
//!
//! A hard kill (SIGKILL, OOM, power loss) can leave the journal's last
//! line half-written. The resume contract says such a tail is *skipped*
//! — the affected trial simply reruns — and the resumed sweep is still
//! bit-identical to an uninterrupted one. These tests enforce that at
//! every possible tear point: the last journaled record is truncated at
//! **each byte offset** in turn, the journal is resumed, and the final
//! outcome is compared against the uninterrupted reference.
//!
//! Two tails are exercised: a short `ok` record and a much longer
//! `fault` (quarantine) record, whose JSON payload offers many more
//! places for a tear to land inside a string, a number or an escape.

use sdem_exec::{CheckpointJournal, SweepRunner, TrialCtx, TrialFailure};

const GRID_SEED: u64 = 0x7EA2_0005;
const POINTS: [f64; 3] = [1.0, 2.0, 3.0];
const REPS: usize = 3;

/// Deterministic trial whose result is the trial's derived seed, so any
/// silently dropped or re-derived trial shows up as a value mismatch.
fn trial_ok(_p: &f64, ctx: &TrialCtx) -> Result<u64, TrialFailure> {
    Ok(ctx.seed(0))
}

fn encode(v: &u64) -> String {
    format!("{v:016x}")
}

fn decode(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

fn journal_path(tag: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("sdem-torn-tail-{tag}-{}.ckpt", std::process::id()));
    path
}

/// Runs the full grid through the checkpointed path with one thread so
/// journal lines land in trial-index order, returning the journal bytes.
fn full_checkpointed_run<F>(tag: &str, trial: F) -> (Vec<u8>, std::path::PathBuf)
where
    F: Fn(&f64, &TrialCtx) -> Result<u64, TrialFailure> + Sync,
{
    let path = journal_path(tag);
    let mut journal = CheckpointJournal::new(&path);
    SweepRunner::new()
        .with_threads(1)
        .try_run_checkpointed_with_state(
            &POINTS,
            REPS,
            GRID_SEED,
            || (),
            |p, ctx, _: &mut ()| trial(p, ctx),
            encode,
            decode,
            &mut journal,
        )
        .expect("full run succeeds");
    let bytes = std::fs::read(&path).expect("journal exists");
    (bytes, path)
}

/// Truncates the journal after `keep` bytes of its final record line and
/// resumes; the merged outcome must equal the uninterrupted reference.
fn assert_every_tear_resumes_identically<F>(tag: &str, trial: F)
where
    F: Fn(&f64, &TrialCtx) -> Result<u64, TrialFailure> + Sync + Copy,
{
    let reference = SweepRunner::new()
        .with_threads(1)
        .run_quarantined(&POINTS, REPS, GRID_SEED, |p, ctx| trial(p, ctx))
        .expect("reference run succeeds");

    let (bytes, path) = full_checkpointed_run(tag, trial);
    let text = std::str::from_utf8(&bytes).expect("journal is UTF-8");
    assert!(text.ends_with('\n'), "journal lines are newline-terminated");
    let body = &text[..text.len() - 1];
    let last_line_start = body.rfind('\n').map_or(0, |i| i + 1);
    let last_line_len = body.len() - last_line_start;
    assert!(last_line_start > 0, "journal has a header plus records");
    // Newlines inside `body` separate the header + records, so their
    // count is exactly the number of record lines.
    let full_records = body.matches('\n').count();
    assert_eq!(full_records, POINTS.len() * REPS);

    // Tear at every byte of the final record: 0 (line vanished entirely,
    // no trailing newline) through len-1 (one byte short), plus the
    // untorn file as a control.
    for keep in 0..=last_line_len {
        let mut torn = bytes[..last_line_start + keep].to_vec();
        if keep == last_line_len {
            torn.push(b'\n'); // the control: intact file
        }
        std::fs::write(&path, &torn).expect("write torn journal");

        let mut journal = CheckpointJournal::resume(&path)
            .unwrap_or_else(|e| panic!("{tag}: resume failed at tear offset {keep}: {e}"));
        // A tear usually drops the last record (it reruns), but one that
        // only removes the closing brace leaves a fully parsable payload
        // behind — both are legal, silently *corrupted* loads are not
        // (the outcome comparison below would catch those).
        assert!(
            journal.preloaded() == full_records - 1 || journal.preloaded() == full_records,
            "{tag}: tear at offset {keep} preloaded {} of {full_records} records",
            journal.preloaded(),
            full_records = full_records
        );
        if keep == last_line_len {
            assert_eq!(journal.preloaded(), full_records, "{tag}: untorn control");
        }

        let resumed = SweepRunner::new()
            .with_threads(2)
            .try_run_checkpointed_with_state(
                &POINTS,
                REPS,
                GRID_SEED,
                || (),
                |p, ctx, _: &mut ()| trial(p, ctx),
                encode,
                decode,
                &mut journal,
            )
            .unwrap_or_else(|e| panic!("{tag}: resumed run failed at tear offset {keep}: {e}"));

        assert!(!resumed.is_partial());
        assert_eq!(
            resumed.per_point, reference.per_point,
            "{tag}: results diverged after tear at offset {keep}"
        );
        assert_eq!(
            resumed.quarantine, reference.quarantine,
            "{tag}: quarantine diverged after tear at offset {keep}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_ok_tail_resumes_bit_identically_at_every_byte() {
    assert_every_tear_resumes_identically("ok-tail", trial_ok);
}

#[test]
fn torn_fault_tail_resumes_bit_identically_at_every_byte() {
    // The final trial (highest index) quarantines, so the journal's last
    // line is a fault record with a long JSON payload.
    fn trial(p: &f64, ctx: &TrialCtx) -> Result<u64, TrialFailure> {
        if *p == POINTS[POINTS.len() - 1] {
            return Err(
                TrialFailure::new("nan-energy", "synthetic fault for the torn-tail suite")
                    .with_seed(ctx.seed(0)),
            );
        }
        Ok(ctx.seed(0))
    }
    assert_every_tear_resumes_identically("fault-tail", trial);
}
