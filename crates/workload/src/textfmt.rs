//! The on-disk task-set format: one task per line,
//! `id release_ms deadline_ms work_cycles`, with `#` comments and blank
//! lines ignored. Used by `sdem-cli` and handy for sharing instances
//! between experiments.
//!
//! # Examples
//!
//! ```
//! use sdem_workload::textfmt::{from_text, to_text};
//! let set = from_text("0 0 50 2e6\n1 10 80 3e6\n").unwrap();
//! assert_eq!(set.len(), 2);
//! let round = from_text(&to_text(&set)).unwrap();
//! assert_eq!(round.len(), 2);
//! ```

use sdem_types::{Cycles, Task, TaskSet, Time};

/// Serializes a task set to the text format.
pub fn to_text(tasks: &TaskSet) -> String {
    let mut out = String::from("# id release_ms deadline_ms work_cycles\n");
    for t in tasks.iter() {
        out.push_str(&format!(
            "{} {:.6} {:.6} {:.3}\n",
            t.id().0,
            t.release().as_millis(),
            t.deadline().as_millis(),
            t.work().value(),
        ));
    }
    out
}

/// Parses the text format back into a task set.
///
/// # Errors
///
/// Reports the offending line for malformed rows, and forwards task-set
/// validation errors (duplicate ids, empty windows, ...).
pub fn from_text(text: &str) -> Result<TaskSet, String> {
    let mut tasks = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {}: expected `id release_ms deadline_ms work_cycles`, got `{line}`",
                lineno + 1
            ));
        }
        let parse = |s: &str, what: &str| -> Result<f64, String> {
            s.parse()
                .map_err(|_| format!("line {}: bad {what} `{s}`", lineno + 1))
        };
        let id: usize = fields[0]
            .parse()
            .map_err(|_| format!("line {}: bad id `{}`", lineno + 1, fields[0]))?;
        let release = parse(fields[1], "release")?;
        let deadline = parse(fields[2], "deadline")?;
        let work = parse(fields[3], "work")?;
        tasks.push(Task::new(
            id,
            Time::from_millis(release),
            Time::from_millis(deadline),
            Cycles::new(work),
        ));
    }
    TaskSet::new(tasks).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let tasks = TaskSet::new(vec![
            Task::new(
                0,
                Time::from_millis(0.0),
                Time::from_millis(50.0),
                Cycles::new(2.0e6),
            ),
            Task::new(
                1,
                Time::from_millis(12.5),
                Time::from_millis(80.0),
                Cycles::new(3.5e6),
            ),
        ])
        .unwrap();
        let text = to_text(&tasks);
        let back = from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in tasks.iter().zip(back.iter()) {
            assert_eq!(a.id(), b.id());
            assert!((a.release() - b.release()).abs().as_millis() < 1e-3);
            assert!((a.work().value() - b.work().value()).abs() < 1.0);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n0 0 50 1e6  # trailing comment\n";
        let set = from_text(text).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn parser_never_panics_on_garbage() {
        // Fuzz-ish robustness: arbitrary byte soup must produce Err or Ok,
        // never a panic.
        let samples = [
            "",
            "\n\n\n",
            "###",
            "0",
            "0 1",
            "0 1 2 3 4 5",
            "a b c d",
            "0 -5 -1 1e6",
            "0 0 1e308 1e308",
            "0 0 nan 1",
            "0 0 inf 1",
            "🦀 0 1 2",
            "0 0 50 1e6\n0 0 60 1e6",
        ];
        for s in samples {
            let _ = from_text(s);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(from_text("0 0 50").unwrap_err().contains("line 1"));
        assert!(from_text("0 0 fifty 1e6").unwrap_err().contains("line 1"));
        assert!(from_text("x 0 50 1e6").unwrap_err().contains("bad id"));
        // Validation errors surface too (deadline before release).
        assert!(from_text("0 50 10 1e6").unwrap_err().contains("deadline"));
    }
}
