//! Seeded random task-set generators (paper §8.1.2).

use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem_types::{Cycles, Task, TaskSet, Time};

/// Configuration of the sporadic generator. Defaults are the paper's:
/// workloads in `[2, 5]·10⁶` cycles, feasible regions in `[10, 120]` ms,
/// maximum inter-arrival `x = 400` ms (the Table 4 star).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of tasks to generate.
    pub tasks: usize,
    /// Maximum inter-arrival time `x` between consecutive releases; actual
    /// inter-arrivals are uniform in `[0, x]`.
    pub max_inter_arrival: Time,
    /// Uniform workload range in cycles.
    pub work_range: (f64, f64),
    /// Uniform feasible-region length range.
    pub window_range: (Time, Time),
}

impl SyntheticConfig {
    /// The paper's configuration with `n` tasks and inter-arrival cap `x`.
    pub fn paper(tasks: usize, x: Time) -> Self {
        Self {
            tasks,
            max_inter_arrival: x,
            ..Self::default()
        }
    }
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            tasks: 64,
            max_inter_arrival: Time::from_millis(crate::paper::DEFAULT_X_MS),
            work_range: (2.0e6, 5.0e6),
            window_range: (Time::from_millis(10.0), Time::from_millis(120.0)),
        }
    }
}

/// Generates a sporadic task set per the paper's §8.1.2.
///
/// Reproducible: the same `(config, seed)` always yields the same set.
///
/// # Panics
///
/// Panics if `config.tasks == 0` or a range is inverted.
///
/// # Examples
///
/// ```
/// use sdem_workload::synthetic::{sporadic, SyntheticConfig};
/// use sdem_types::Time;
///
/// let cfg = SyntheticConfig::paper(50, Time::from_millis(100.0));
/// let a = sporadic(&cfg, 7);
/// let b = sporadic(&cfg, 7);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 50);
/// ```
pub fn sporadic(config: &SyntheticConfig, seed: u64) -> TaskSet {
    assert!(config.tasks > 0, "need at least one task");
    let (w_lo, w_hi) = config.work_range;
    let (win_lo, win_hi) = (
        config.window_range.0.as_secs(),
        config.window_range.1.as_secs(),
    );
    assert!(w_lo <= w_hi && win_lo <= win_hi, "ranges must be ordered");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut release = 0.0f64;
    let tasks = (0..config.tasks)
        .map(|i| {
            if i > 0 {
                release += rng.gen_range(0.0..=config.max_inter_arrival.as_secs());
            }
            let window = rng.gen_range(win_lo..=win_hi);
            let work = rng.gen_range(w_lo..=w_hi);
            Task::new(
                i,
                Time::from_secs(release),
                Time::from_secs(release + window),
                Cycles::new(work),
            )
        })
        .collect();
    TaskSet::new(tasks).expect("generator produces valid tasks")
}

/// Generates a common-release task set (the §4 model): all tasks release
/// at 0, deadlines and workloads drawn from the config ranges.
///
/// # Panics
///
/// Panics if `config.tasks == 0` or a range is inverted.
pub fn common_release(config: &SyntheticConfig, seed: u64) -> TaskSet {
    assert!(config.tasks > 0, "need at least one task");
    let (w_lo, w_hi) = config.work_range;
    let (win_lo, win_hi) = (
        config.window_range.0.as_secs(),
        config.window_range.1.as_secs(),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tasks = (0..config.tasks)
        .map(|i| {
            let window = rng.gen_range(win_lo..=win_hi);
            let work = rng.gen_range(w_lo..=w_hi);
            Task::new(i, Time::ZERO, Time::from_secs(window), Cycles::new(work))
        })
        .collect();
    TaskSet::new(tasks).expect("generator produces valid tasks")
}

/// Generates an agreeable-deadline task set (the §5 model): releases are
/// sporadic and each deadline is forced to be at least the previous one.
///
/// # Panics
///
/// Panics if `config.tasks == 0` or a range is inverted.
pub fn agreeable(config: &SyntheticConfig, seed: u64) -> TaskSet {
    assert!(config.tasks > 0, "need at least one task");
    let (w_lo, w_hi) = config.work_range;
    let (win_lo, win_hi) = (
        config.window_range.0.as_secs(),
        config.window_range.1.as_secs(),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut release = 0.0f64;
    let mut last_deadline = 0.0f64;
    let tasks = (0..config.tasks)
        .map(|i| {
            if i > 0 {
                release += rng.gen_range(0.0..=config.max_inter_arrival.as_secs());
            }
            let window = rng.gen_range(win_lo..=win_hi);
            let deadline = (release + window).max(last_deadline + 1e-9);
            last_deadline = deadline;
            let work = rng.gen_range(w_lo..=w_hi);
            Task::new(
                i,
                Time::from_secs(release),
                Time::from_secs(deadline),
                Cycles::new(work),
            )
        })
        .collect();
    TaskSet::new(tasks).expect("generator produces valid tasks")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sporadic_is_reproducible_and_in_range() {
        let cfg = SyntheticConfig::paper(100, Time::from_millis(200.0));
        let a = sporadic(&cfg, 42);
        let b = sporadic(&cfg, 42);
        assert_eq!(a, b);
        let c = sporadic(&cfg, 43);
        assert_ne!(a, c);
        for t in a.iter() {
            let w = t.work().value();
            assert!((2.0e6..=5.0e6).contains(&w), "work {w} out of range");
            let win = t.window().as_millis();
            assert!((10.0..=120.0).contains(&win), "window {win} out of range");
        }
        // Releases are non-decreasing with bounded inter-arrival.
        let rel: Vec<f64> = a
            .sorted_by_release()
            .iter()
            .map(|t| t.release().as_millis())
            .collect();
        for w in rel.windows(2) {
            assert!(w[1] >= w[0]);
            assert!(w[1] - w[0] <= 200.0 + 1e-9);
        }
    }

    #[test]
    fn sporadic_tasks_are_feasible_on_the_a57() {
        // Densest possible task: 5e6 cycles over 10 ms = 500 MHz < 1900 MHz.
        let cfg = SyntheticConfig::paper(200, Time::from_millis(100.0));
        let set = sporadic(&cfg, 1);
        assert!(set.max_filled_speed().as_mhz() <= 500.0 + 1e-6);
    }

    #[test]
    fn common_release_is_common() {
        let cfg = SyntheticConfig::paper(20, Time::from_millis(100.0));
        let set = common_release(&cfg, 5);
        assert!(set.is_common_release());
        assert!(set.is_agreeable());
    }

    #[test]
    fn agreeable_is_agreeable() {
        for seed in 0..20 {
            let cfg = SyntheticConfig::paper(30, Time::from_millis(50.0));
            let set = agreeable(&cfg, seed);
            assert!(set.is_agreeable(), "seed {seed} not agreeable");
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn rejects_empty_config() {
        let cfg = SyntheticConfig {
            tasks: 0,
            ..SyntheticConfig::default()
        };
        let _ = sporadic(&cfg, 0);
    }
}
