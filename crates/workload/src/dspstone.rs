//! DSPstone-like benchmark tasks (paper §8.1.1).
//!
//! The paper instantiates two DSPstone kernels — a 1024-point FFT and a
//! matrix multiplication — measures their cycle counts on the Analog
//! Devices xsim2101 simulator, sets each instance's deadline to its
//! execution time at 16.5 MHz, and releases instances sporadically with
//! period `|d − r| · U` (larger `U` ⇒ lower utilization).
//!
//! We do not have xsim2101; per the substitution documented in `DESIGN.md`,
//! cycle counts are derived analytically from the kernels' operation
//! counts. Only the `(work, window)` pairs reach the schedulers, so the
//! experiment's structure — two task populations with fixed work and
//! `U`-scaled periods — is preserved exactly.

use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem_types::{Cycles, Speed, Task, TaskSet, Time};

/// The DSP reference clock the paper uses to set deadlines.
pub const REFERENCE_CLOCK_MHZ: f64 = 16.5;

/// A DSPstone-like benchmark kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Radix-2 FFT over `points` complex samples (the paper uses 1024).
    Fft {
        /// Transform size (must be a power of two).
        points: u32,
    },
    /// Dense matrix multiply `[X×Y]·[Y×Z]`.
    MatrixMultiply {
        /// Rows of the left operand.
        x: u32,
        /// Inner dimension.
        y: u32,
        /// Columns of the right operand.
        z: u32,
    },
}

impl Benchmark {
    /// The paper's 1024-point FFT instance.
    pub fn fft_1024() -> Self {
        Self::Fft { points: 1024 }
    }

    /// A representative matrix-multiply instance (24×24×24), sized so the
    /// two benchmark populations have the same order of magnitude of work,
    /// as in DSPstone.
    pub fn matrix_24() -> Self {
        Self::MatrixMultiply {
            x: 24,
            y: 24,
            z: 24,
        }
    }

    /// Analytic cycle count of one instance.
    ///
    /// DSPstone measures *C-compiled* kernels, whose cycle counts on the
    /// ADSP-21xx family run an order of magnitude above hand assembly
    /// (that compiler-overhead gap is the benchmark suite's whole point):
    ///
    /// * FFT: `(N/2)·log2 N` radix-2 butterflies at ~200 cycles each
    ///   (compiled complex multiply + twiddle loads + addressing);
    /// * MatMul: `X·Y·Z` multiply-accumulates at ~30 cycles each plus
    ///   per-element loop overhead.
    ///
    /// At the 16.5 MHz reference clock this puts instance windows in the
    /// tens of milliseconds — the same order as the Table 4 break-even
    /// times, which is what makes the Fig. 6 sleep trade-off non-trivial.
    pub fn cycles(&self) -> Cycles {
        match *self {
            Self::Fft { points } => {
                let n = f64::from(points);
                Cycles::new((n / 2.0) * n.log2() * 200.0)
            }
            Self::MatrixMultiply { x, y, z } => {
                let macs = f64::from(x) * f64::from(y) * f64::from(z);
                Cycles::new(macs * 30.0 + f64::from(x) * f64::from(z) * 8.0)
            }
        }
    }

    /// The feasible-region length: execution time at the 16.5 MHz
    /// reference clock (paper §8.1.1).
    pub fn reference_window(&self) -> Time {
        self.cycles() / Speed::from_mhz(REFERENCE_CLOCK_MHZ)
    }
}

/// Generates the paper's benchmark workload: interleaved sporadic streams
/// of FFT-1024 and matrix-multiply instances.
///
/// Each stream releases `instances_per_stream` instances; instance `k` of
/// a stream with window `W` releases around `k · W · u` with a seeded
/// uniform jitter of up to half a period (sporadic, not strictly periodic).
/// Larger `u` means lower utilization (paper Fig. 6's x-axis).
///
/// # Panics
///
/// Panics if `instances_per_stream == 0` or `u <= 0`.
///
/// # Examples
///
/// ```
/// use sdem_workload::dspstone::{stream, Benchmark};
///
/// let set = stream(&[Benchmark::fft_1024(), Benchmark::matrix_24()], 4.0, 10, 3);
/// assert_eq!(set.len(), 20);
/// ```
pub fn stream(benchmarks: &[Benchmark], u: f64, instances_per_stream: usize, seed: u64) -> TaskSet {
    assert!(instances_per_stream > 0, "need at least one instance");
    assert!(u > 0.0, "utilization scale U must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tasks = Vec::with_capacity(benchmarks.len() * instances_per_stream);
    let mut id = 0usize;
    for bench in benchmarks {
        let window = bench.reference_window().as_secs();
        let period = window * u;
        let mut release = rng.gen_range(0.0..period);
        for _ in 0..instances_per_stream {
            tasks.push(Task::new(
                id,
                Time::from_secs(release),
                Time::from_secs(release + window),
                bench.cycles(),
            ));
            id += 1;
            // Sporadic: period plus up to half a period of jitter.
            release += period + rng.gen_range(0.0..=period * 0.5);
        }
    }
    TaskSet::new(tasks).expect("generator produces valid tasks")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_1024_cycle_count() {
        let c = Benchmark::fft_1024().cycles().value();
        // 512 butterflies/stage × 10 stages × 200 cycles = 1 024 000.
        assert_eq!(c, 1_024_000.0);
    }

    #[test]
    fn matmul_cycle_count_scales() {
        let small = Benchmark::MatrixMultiply { x: 4, y: 4, z: 4 }
            .cycles()
            .value();
        assert_eq!(small, 4.0 * 4.0 * 4.0 * 30.0 + 16.0 * 8.0);
        let big = Benchmark::matrix_24().cycles().value();
        assert!(big > small);
    }

    #[test]
    fn reference_window_is_16_5_mhz_execution_time() {
        let b = Benchmark::fft_1024();
        let expected_ms = 1_024_000.0 / 16.5e6 * 1e3;
        assert!((b.reference_window().as_millis() - expected_ms).abs() < 1e-9);
        // ≈ 62 ms: comparable to the Table 4 break-even times, so the
        // sleep trade-off in Fig. 6 is non-trivial.
        assert!((40.0..90.0).contains(&b.reference_window().as_millis()));
    }

    #[test]
    fn stream_is_reproducible_and_sized() {
        let benches = [Benchmark::fft_1024(), Benchmark::matrix_24()];
        let a = stream(&benches, 3.0, 25, 9);
        let b = stream(&benches, 3.0, 25, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn larger_u_spreads_releases() {
        let benches = [Benchmark::fft_1024()];
        let tight = stream(&benches, 2.0, 20, 1);
        let loose = stream(&benches, 9.0, 20, 1);
        let span = |s: &TaskSet| s.latest_deadline().as_secs() - s.earliest_release().as_secs();
        assert!(span(&loose) > span(&tight) * 2.0);
    }

    #[test]
    fn instances_have_u_independent_windows() {
        // U scales the period, not the deadline window.
        for u in [2.0, 5.0, 9.0] {
            let set = stream(&[Benchmark::fft_1024()], u, 5, 0);
            for t in set.iter() {
                assert!(
                    (t.window().as_secs() - Benchmark::fft_1024().reference_window().as_secs())
                        .abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn benchmark_tasks_fit_the_a57() {
        // Filled speed = 16.5 MHz ≪ 1900 MHz.
        let set = stream(&[Benchmark::fft_1024(), Benchmark::matrix_24()], 2.0, 10, 0);
        assert!((set.max_filled_speed().as_mhz() - 16.5).abs() < 1e-6);
    }
}
