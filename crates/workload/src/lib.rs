//! Workload generators for the SDEM experiments (paper §8.1).
//!
//! Three sources of task sets, all seeded and reproducible:
//!
//! * [`synthetic`] — the paper's random task sets (§8.1.2): workloads in
//!   `[2, 5]·10⁶` cycles, feasible regions in `[10, 120]` ms, sporadic
//!   releases with a maximum inter-arrival `x` that controls utilization;
//! * [`dspstone`] — the DSPstone-like benchmark tasks (§8.1.1): FFT-1024
//!   and matrix-multiply instances with analytic cycle counts (substituting
//!   the xsim2101 measurements, see `DESIGN.md`), deadline equal to the
//!   16.5 MHz execution time, and period `|d − r| · U`;
//! * [`periodic`] — classic periodic task declarations with utilization
//!   accounting and unrolling into job sets;
//! * [`dag`] — precedence-constrained DAG task sets for the federated
//!   pipeline: validated models, a YAML-subset ingester, and a seeded
//!   layered random-DAG generator;
//! * structured generators for the theory sections: [`synthetic::common_release`]
//!   (§4) and [`synthetic::agreeable`] (§5).
//!
//! [`paper`] holds the Table 4 parameter grid verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod dspstone;
pub mod paper;
pub mod periodic;
pub mod synthetic;
pub mod textfmt;
pub mod trace;
