//! Periodic real-time tasks and their unrolling into job sets.
//!
//! The paper's evaluation releases benchmark instances "sporadically" with
//! period `|d − r| · U` — i.e. its workloads are periodic task systems in
//! the classic Liu–Layland sense. This module provides that substrate
//! explicitly: periodic task declarations, utilization accounting, and
//! unrolling into the [`TaskSet`] job model every scheduler consumes.

use core::fmt;

use sdem_types::{Cycles, ErrorKind, Speed, Task, TaskSet, TaskSetError, Time};

/// A periodic task: a job of `wcet` cycles is released every `period`
/// starting at `offset`, each due `relative_deadline` after its release.
///
/// # Examples
///
/// ```
/// use sdem_workload::periodic::PeriodicTask;
/// use sdem_types::{Time, Cycles, Speed};
///
/// let t = PeriodicTask::implicit(0, Time::from_millis(100.0), Cycles::new(2.0e6));
/// // Implicit deadline: due exactly one period after release.
/// assert_eq!(t.relative_deadline(), t.period());
/// // Utilization at 100 MHz: 2e6 cycles / (0.1 s · 1e8 Hz) = 0.2.
/// assert!((t.utilization(Speed::from_mhz(100.0)) - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicTask {
    id: usize,
    period: Time,
    wcet: Cycles,
    offset: Time,
    relative_deadline: Time,
}

impl PeriodicTask {
    /// A task with an implicit deadline (due one period after release) and
    /// zero offset.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and finite, or `wcet` negative.
    #[must_use]
    pub fn implicit(id: usize, period: Time, wcet: Cycles) -> Self {
        Self::new(id, period, wcet, Time::ZERO, period)
    }

    /// A fully general periodic task.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `relative_deadline` is not positive and
    /// finite, `offset` is negative, or `wcet` is negative/non-finite.
    #[must_use]
    pub fn new(
        id: usize,
        period: Time,
        wcet: Cycles,
        offset: Time,
        relative_deadline: Time,
    ) -> Self {
        assert!(
            period.is_finite() && period.value() > 0.0,
            "period must be positive and finite"
        );
        assert!(
            relative_deadline.is_finite() && relative_deadline.value() > 0.0,
            "relative deadline must be positive and finite"
        );
        assert!(
            offset.is_finite() && offset.value() >= 0.0,
            "offset must be non-negative"
        );
        assert!(
            wcet.is_finite() && wcet.value() >= 0.0,
            "wcet must be non-negative"
        );
        Self {
            id,
            period,
            wcet,
            offset,
            relative_deadline,
        }
    }

    /// The declaring id (job ids are derived from it during unrolling).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Release period.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Worst-case execution demand per job, in cycles.
    pub fn wcet(&self) -> Cycles {
        self.wcet
    }

    /// First release instant.
    pub fn offset(&self) -> Time {
        self.offset
    }

    /// Deadline relative to each release.
    pub fn relative_deadline(&self) -> Time {
        self.relative_deadline
    }

    /// Processor utilization at the given reference speed:
    /// `wcet / (period · speed)`.
    pub fn utilization(&self, speed: Speed) -> f64 {
        self.wcet.value() / (speed * self.period).value()
    }
}

/// Why a hyperperiod could not be computed for a period set.
///
/// Hostile period sets — periods near `u64::MAX` resolution units, or
/// mutually non-harmonic periods whose LCM explodes — are *data*, not
/// programmer errors, so they surface as typed values carrying the
/// workspace-wide [`ErrorKind`] taxonomy instead of panicking or folding
/// into an anonymous `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HyperperiodError {
    /// `tasks[index]`'s period is not within `1e-6` (relative) of an
    /// integer multiple of the resolution.
    NotAMultiple {
        /// Index of the offending task in the input slice.
        index: usize,
    },
    /// The least common multiple of the periods overflows the supported
    /// range (`u64::MAX` resolution units), or the resulting time is not
    /// representable as a finite `f64`.
    Overflow,
}

impl HyperperiodError {
    /// Classifies this error in the workspace-wide [`ErrorKind`]
    /// taxonomy (both shapes are instance-shaped infeasibilities).
    pub const fn error_kind(&self) -> ErrorKind {
        ErrorKind::InfeasibleInput
    }
}

impl fmt::Display for HyperperiodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotAMultiple { index } => write!(
                f,
                "task {index}: period is not an integer multiple of the resolution"
            ),
            Self::Overflow => write!(
                f,
                "hyperperiod overflows the supported range (> u64::MAX resolution units)"
            ),
        }
    }
}

impl std::error::Error for HyperperiodError {}

/// Hyperperiod of a task system whose periods are (close to) integer
/// multiples of `resolution`: the least common multiple of the rounded
/// periods.
///
/// # Errors
///
/// [`HyperperiodError::NotAMultiple`] when some period is not within
/// `1e-6` (relative) of a multiple of the resolution;
/// [`HyperperiodError::Overflow`] when the LCM exceeds `u64::MAX`
/// resolution units (hostile near-`u64::MAX` periods included — the
/// computation is carried in `u128` and never panics or wraps).
///
/// # Examples
///
/// ```
/// use sdem_workload::periodic::{hyperperiod, PeriodicTask};
/// use sdem_types::{Time, Cycles};
///
/// let tasks = [
///     PeriodicTask::implicit(0, Time::from_millis(40.0), Cycles::new(1.0)),
///     PeriodicTask::implicit(1, Time::from_millis(60.0), Cycles::new(1.0)),
/// ];
/// let h = hyperperiod(&tasks, Time::from_millis(1.0)).unwrap();
/// assert!((h.as_millis() - 120.0).abs() < 1e-9);
/// ```
pub fn hyperperiod(tasks: &[PeriodicTask], resolution: Time) -> Result<Time, HyperperiodError> {
    assert!(resolution.value() > 0.0, "resolution must be positive");
    let mut lcm: u128 = 1;
    for (index, t) in tasks.iter().enumerate() {
        let ratio = t.period.as_secs() / resolution.as_secs();
        let rounded = ratio.round();
        if rounded < 1.0 || (ratio - rounded).abs() > 1e-6 * ratio.max(1.0) {
            return Err(HyperperiodError::NotAMultiple { index });
        }
        // `rounded as u128` saturates for huge ratios; the explicit bound
        // check below rejects anything past u64::MAX either way.
        let k = rounded as u128;
        let g = gcd(lcm, k);
        lcm = lcm.checked_mul(k / g).ok_or(HyperperiodError::Overflow)?;
        if lcm > u128::from(u64::MAX) {
            return Err(HyperperiodError::Overflow);
        }
    }
    let h = resolution * lcm as f64;
    // A representable LCM can still overflow f64 once scaled by a large
    // resolution; a non-finite Time would poison every downstream use.
    if !h.is_finite() {
        return Err(HyperperiodError::Overflow);
    }
    Ok(h)
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Total utilization of a periodic task system at `speed`.
pub fn total_utilization(tasks: &[PeriodicTask], speed: Speed) -> f64 {
    tasks.iter().map(|t| t.utilization(speed)).sum()
}

/// Unrolls periodic tasks into the jobs released within `[0, horizon)`,
/// producing a [`TaskSet`] the SDEM schedulers consume directly. Job ids
/// number the jobs consecutively in declaration-then-release order.
///
/// Only jobs whose *deadline* falls within the horizon are emitted, so the
/// resulting set never contains truncated jobs.
///
/// # Errors
///
/// Returns [`TaskSetError::Empty`] when no job fits in the horizon.
///
/// # Examples
///
/// ```
/// use sdem_workload::periodic::{unroll, PeriodicTask};
/// use sdem_types::{Time, Cycles};
///
/// let tasks = [
///     PeriodicTask::implicit(0, Time::from_millis(50.0), Cycles::new(1.0e6)),
///     PeriodicTask::implicit(1, Time::from_millis(100.0), Cycles::new(2.0e6)),
/// ];
/// let jobs = unroll(&tasks, Time::from_millis(200.0))?;
/// // 4 jobs of task 0 (deadlines 50..200) + 2 of task 1.
/// assert_eq!(jobs.len(), 6);
/// # Ok::<(), sdem_types::TaskSetError>(())
/// ```
pub fn unroll(tasks: &[PeriodicTask], horizon: Time) -> Result<TaskSet, TaskSetError> {
    let mut jobs = Vec::new();
    let mut next_id = 0usize;
    for t in tasks {
        let mut k = 0u32;
        loop {
            let release = t.offset + t.period * f64::from(k);
            let deadline = release + t.relative_deadline;
            if deadline > horizon {
                break;
            }
            jobs.push(Task::new(next_id, release, deadline, t.wcet));
            next_id += 1;
            k += 1;
        }
    }
    TaskSet::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Time {
        Time::from_millis(v)
    }

    #[test]
    fn implicit_deadline_equals_period() {
        let t = PeriodicTask::implicit(3, ms(40.0), Cycles::new(1.0e6));
        assert_eq!(t.id(), 3);
        assert_eq!(t.relative_deadline(), t.period());
        assert_eq!(t.offset(), Time::ZERO);
    }

    #[test]
    fn unroll_counts_and_windows() {
        let tasks = [
            PeriodicTask::implicit(0, ms(50.0), Cycles::new(1.0e6)),
            PeriodicTask::new(1, ms(100.0), Cycles::new(2.0e6), ms(10.0), ms(60.0)),
        ];
        let jobs = unroll(&tasks, ms(200.0)).unwrap();
        // Task 0: deadlines 50, 100, 150, 200 → 4 jobs.
        // Task 1: releases 10, 110 with deadlines 70, 170 → 2 jobs.
        assert_eq!(jobs.len(), 6);
        for t in jobs.iter() {
            assert!(t.deadline() <= ms(200.0));
        }
        // The unrolled set of task 1 keeps the constrained deadline.
        let late = jobs
            .tasks()
            .iter()
            .find(|t| t.release() == ms(110.0))
            .unwrap();
        assert!((late.window().as_millis() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn unroll_empty_horizon_is_an_error() {
        let tasks = [PeriodicTask::implicit(0, ms(50.0), Cycles::new(1.0))];
        assert_eq!(unroll(&tasks, ms(10.0)), Err(TaskSetError::Empty));
    }

    #[test]
    fn utilization_sums() {
        let s = Speed::from_mhz(100.0);
        let tasks = [
            PeriodicTask::implicit(0, ms(100.0), Cycles::new(2.0e6)), // 0.2
            PeriodicTask::implicit(1, ms(50.0), Cycles::new(1.0e6)),  // 0.2
        ];
        assert!((total_utilization(&tasks, s) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn unrolled_jobs_are_schedulable_by_sdem_on() {
        use sdem_power::Platform;
        let tasks = [
            PeriodicTask::implicit(0, ms(80.0), Cycles::new(3.0e6)),
            PeriodicTask::new(1, ms(120.0), Cycles::new(5.0e6), ms(15.0), ms(90.0)),
        ];
        let jobs = unroll(&tasks, ms(500.0)).unwrap();
        let platform = Platform::paper_defaults();
        // The unrolled set is a valid general task set for the schedulers.
        assert!(jobs.max_filled_speed() < platform.core().max_speed());
        assert!(!jobs.is_common_release());
    }

    #[test]
    fn hyperperiod_lcm_and_rejections() {
        let t = |ms: f64| PeriodicTask::implicit(0, ms_(ms), Cycles::new(1.0));
        fn ms_(v: f64) -> Time {
            Time::from_millis(v)
        }
        let h = hyperperiod(&[t(20.0), t(50.0), t(8.0)], ms_(1.0)).unwrap();
        assert!((h.as_millis() - 200.0).abs() < 1e-9);
        // Irrational-ish period w.r.t. the resolution is a typed error.
        assert_eq!(
            hyperperiod(&[t(20.5001234)], ms_(1.0)),
            Err(HyperperiodError::NotAMultiple { index: 0 })
        );
        // One hyperperiod of jobs unrolls cleanly.
        let tasks = [
            PeriodicTask::implicit(0, ms_(20.0), Cycles::new(1.0)),
            PeriodicTask::implicit(1, ms_(50.0), Cycles::new(1.0)),
        ];
        let h = hyperperiod(&tasks, ms_(1.0)).unwrap();
        let jobs = unroll(&tasks, h).unwrap();
        assert_eq!(jobs.len(), 5 + 2);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rejects_zero_period() {
        let _ = PeriodicTask::implicit(0, Time::ZERO, Cycles::new(1.0));
    }

    /// Property: hostile near-`u64::MAX` period sets never panic or wrap
    /// — every outcome is `Ok` with a finite hyperperiod that every
    /// period divides, or a typed `Overflow`/`NotAMultiple` error.
    #[test]
    fn hostile_near_max_periods_error_instead_of_panicking() {
        use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};

        // Deterministic overflow shapes first: a single period of
        // ~2^64 resolution units rounds past u64::MAX; a coprime pair of
        // ~2^40-unit periods has an LCM near 2^80 (fits u128, not u64).
        let unit = |k: f64| PeriodicTask::implicit(0, ms(k), Cycles::new(1.0));
        assert_eq!(
            hyperperiod(&[unit(u64::MAX as f64)], ms(1.0)),
            Err(HyperperiodError::Overflow)
        );
        let big = (1u64 << 40) as f64;
        assert_eq!(
            hyperperiod(&[unit(big), unit(big + 1.0)], ms(1.0)),
            Err(HyperperiodError::Overflow)
        );
        // A huge-but-degenerate set (all periods equal) stays Ok.
        let k = ((1u64 << 60) as f64 / 16.0).round() * 16.0; // exactly representable
        assert!(hyperperiod(&[unit(k), unit(k)], ms(1.0)).is_ok());

        // Randomized sweep over near-u64::MAX magnitudes.
        let mut rng = ChaCha8Rng::seed_from_u64(0x4B1D_F00D);
        for _ in 0..512 {
            let n = rng.gen_range(1usize..=4);
            let tasks: Vec<PeriodicTask> = (0..n)
                .map(|id| {
                    // 2^30..2^63 resolution units, exactly representable
                    // in f64 so the multiple check cannot reject them.
                    let exp = rng.gen_range(30u32..=63);
                    let mantissa = rng.gen_range(1u64..=(1 << 20)) | 1;
                    let units = (mantissa as f64) * (1u64 << (exp.saturating_sub(20))) as f64;
                    PeriodicTask::implicit(id, ms(units), Cycles::new(1.0))
                })
                .collect();
            match hyperperiod(&tasks, ms(1.0)) {
                Ok(h) => {
                    assert!(h.is_finite() && h.value() > 0.0);
                    for t in &tasks {
                        let ratio = h.as_secs() / t.period().as_secs();
                        assert!(
                            (ratio - ratio.round()).abs() <= 1e-6 * ratio,
                            "every period must divide the hyperperiod"
                        );
                    }
                }
                Err(HyperperiodError::Overflow | HyperperiodError::NotAMultiple { .. }) => {}
            }
        }
    }
}
