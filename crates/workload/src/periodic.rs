//! Periodic real-time tasks and their unrolling into job sets.
//!
//! The paper's evaluation releases benchmark instances "sporadically" with
//! period `|d − r| · U` — i.e. its workloads are periodic task systems in
//! the classic Liu–Layland sense. This module provides that substrate
//! explicitly: periodic task declarations, utilization accounting, and
//! unrolling into the [`TaskSet`] job model every scheduler consumes.

use sdem_types::{Cycles, Speed, Task, TaskSet, TaskSetError, Time};

/// A periodic task: a job of `wcet` cycles is released every `period`
/// starting at `offset`, each due `relative_deadline` after its release.
///
/// # Examples
///
/// ```
/// use sdem_workload::periodic::PeriodicTask;
/// use sdem_types::{Time, Cycles, Speed};
///
/// let t = PeriodicTask::implicit(0, Time::from_millis(100.0), Cycles::new(2.0e6));
/// // Implicit deadline: due exactly one period after release.
/// assert_eq!(t.relative_deadline(), t.period());
/// // Utilization at 100 MHz: 2e6 cycles / (0.1 s · 1e8 Hz) = 0.2.
/// assert!((t.utilization(Speed::from_mhz(100.0)) - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicTask {
    id: usize,
    period: Time,
    wcet: Cycles,
    offset: Time,
    relative_deadline: Time,
}

impl PeriodicTask {
    /// A task with an implicit deadline (due one period after release) and
    /// zero offset.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and finite, or `wcet` negative.
    pub fn implicit(id: usize, period: Time, wcet: Cycles) -> Self {
        Self::new(id, period, wcet, Time::ZERO, period)
    }

    /// A fully general periodic task.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `relative_deadline` is not positive and
    /// finite, `offset` is negative, or `wcet` is negative/non-finite.
    pub fn new(
        id: usize,
        period: Time,
        wcet: Cycles,
        offset: Time,
        relative_deadline: Time,
    ) -> Self {
        assert!(
            period.is_finite() && period.value() > 0.0,
            "period must be positive and finite"
        );
        assert!(
            relative_deadline.is_finite() && relative_deadline.value() > 0.0,
            "relative deadline must be positive and finite"
        );
        assert!(
            offset.is_finite() && offset.value() >= 0.0,
            "offset must be non-negative"
        );
        assert!(
            wcet.is_finite() && wcet.value() >= 0.0,
            "wcet must be non-negative"
        );
        Self {
            id,
            period,
            wcet,
            offset,
            relative_deadline,
        }
    }

    /// The declaring id (job ids are derived from it during unrolling).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Release period.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Worst-case execution demand per job, in cycles.
    pub fn wcet(&self) -> Cycles {
        self.wcet
    }

    /// First release instant.
    pub fn offset(&self) -> Time {
        self.offset
    }

    /// Deadline relative to each release.
    pub fn relative_deadline(&self) -> Time {
        self.relative_deadline
    }

    /// Processor utilization at the given reference speed:
    /// `wcet / (period · speed)`.
    pub fn utilization(&self, speed: Speed) -> f64 {
        self.wcet.value() / (speed * self.period).value()
    }
}

/// Hyperperiod of a task system whose periods are (close to) integer
/// multiples of `resolution`: the least common multiple of the rounded
/// periods. Returns `None` when some period is not within `1e-6`
/// (relative) of a multiple of the resolution, or the LCM overflows.
///
/// # Examples
///
/// ```
/// use sdem_workload::periodic::{hyperperiod, PeriodicTask};
/// use sdem_types::{Time, Cycles};
///
/// let tasks = [
///     PeriodicTask::implicit(0, Time::from_millis(40.0), Cycles::new(1.0)),
///     PeriodicTask::implicit(1, Time::from_millis(60.0), Cycles::new(1.0)),
/// ];
/// let h = hyperperiod(&tasks, Time::from_millis(1.0)).unwrap();
/// assert!((h.as_millis() - 120.0).abs() < 1e-9);
/// ```
pub fn hyperperiod(tasks: &[PeriodicTask], resolution: Time) -> Option<Time> {
    assert!(resolution.value() > 0.0, "resolution must be positive");
    let mut lcm: u128 = 1;
    for t in tasks {
        let ratio = t.period.as_secs() / resolution.as_secs();
        let rounded = ratio.round();
        if rounded < 1.0 || (ratio - rounded).abs() > 1e-6 * ratio.max(1.0) {
            return None;
        }
        let k = rounded as u128;
        let g = gcd(lcm, k);
        lcm = lcm.checked_mul(k / g)?;
        if lcm > u128::from(u64::MAX) {
            return None;
        }
    }
    Some(resolution * lcm as f64)
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Total utilization of a periodic task system at `speed`.
pub fn total_utilization(tasks: &[PeriodicTask], speed: Speed) -> f64 {
    tasks.iter().map(|t| t.utilization(speed)).sum()
}

/// Unrolls periodic tasks into the jobs released within `[0, horizon)`,
/// producing a [`TaskSet`] the SDEM schedulers consume directly. Job ids
/// number the jobs consecutively in declaration-then-release order.
///
/// Only jobs whose *deadline* falls within the horizon are emitted, so the
/// resulting set never contains truncated jobs.
///
/// # Errors
///
/// Returns [`TaskSetError::Empty`] when no job fits in the horizon.
///
/// # Examples
///
/// ```
/// use sdem_workload::periodic::{unroll, PeriodicTask};
/// use sdem_types::{Time, Cycles};
///
/// let tasks = [
///     PeriodicTask::implicit(0, Time::from_millis(50.0), Cycles::new(1.0e6)),
///     PeriodicTask::implicit(1, Time::from_millis(100.0), Cycles::new(2.0e6)),
/// ];
/// let jobs = unroll(&tasks, Time::from_millis(200.0))?;
/// // 4 jobs of task 0 (deadlines 50..200) + 2 of task 1.
/// assert_eq!(jobs.len(), 6);
/// # Ok::<(), sdem_types::TaskSetError>(())
/// ```
pub fn unroll(tasks: &[PeriodicTask], horizon: Time) -> Result<TaskSet, TaskSetError> {
    let mut jobs = Vec::new();
    let mut next_id = 0usize;
    for t in tasks {
        let mut k = 0u32;
        loop {
            let release = t.offset + t.period * f64::from(k);
            let deadline = release + t.relative_deadline;
            if deadline > horizon {
                break;
            }
            jobs.push(Task::new(next_id, release, deadline, t.wcet));
            next_id += 1;
            k += 1;
        }
    }
    TaskSet::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Time {
        Time::from_millis(v)
    }

    #[test]
    fn implicit_deadline_equals_period() {
        let t = PeriodicTask::implicit(3, ms(40.0), Cycles::new(1.0e6));
        assert_eq!(t.id(), 3);
        assert_eq!(t.relative_deadline(), t.period());
        assert_eq!(t.offset(), Time::ZERO);
    }

    #[test]
    fn unroll_counts_and_windows() {
        let tasks = [
            PeriodicTask::implicit(0, ms(50.0), Cycles::new(1.0e6)),
            PeriodicTask::new(1, ms(100.0), Cycles::new(2.0e6), ms(10.0), ms(60.0)),
        ];
        let jobs = unroll(&tasks, ms(200.0)).unwrap();
        // Task 0: deadlines 50, 100, 150, 200 → 4 jobs.
        // Task 1: releases 10, 110 with deadlines 70, 170 → 2 jobs.
        assert_eq!(jobs.len(), 6);
        for t in jobs.iter() {
            assert!(t.deadline() <= ms(200.0));
        }
        // The unrolled set of task 1 keeps the constrained deadline.
        let late = jobs
            .tasks()
            .iter()
            .find(|t| t.release() == ms(110.0))
            .unwrap();
        assert!((late.window().as_millis() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn unroll_empty_horizon_is_an_error() {
        let tasks = [PeriodicTask::implicit(0, ms(50.0), Cycles::new(1.0))];
        assert_eq!(unroll(&tasks, ms(10.0)), Err(TaskSetError::Empty));
    }

    #[test]
    fn utilization_sums() {
        let s = Speed::from_mhz(100.0);
        let tasks = [
            PeriodicTask::implicit(0, ms(100.0), Cycles::new(2.0e6)), // 0.2
            PeriodicTask::implicit(1, ms(50.0), Cycles::new(1.0e6)),  // 0.2
        ];
        assert!((total_utilization(&tasks, s) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn unrolled_jobs_are_schedulable_by_sdem_on() {
        use sdem_power::Platform;
        let tasks = [
            PeriodicTask::implicit(0, ms(80.0), Cycles::new(3.0e6)),
            PeriodicTask::new(1, ms(120.0), Cycles::new(5.0e6), ms(15.0), ms(90.0)),
        ];
        let jobs = unroll(&tasks, ms(500.0)).unwrap();
        let platform = Platform::paper_defaults();
        // The unrolled set is a valid general task set for the schedulers.
        assert!(jobs.max_filled_speed() < platform.core().max_speed());
        assert!(!jobs.is_common_release());
    }

    #[test]
    fn hyperperiod_lcm_and_rejections() {
        let t = |ms: f64| PeriodicTask::implicit(0, ms_(ms), Cycles::new(1.0));
        fn ms_(v: f64) -> Time {
            Time::from_millis(v)
        }
        let h = hyperperiod(&[t(20.0), t(50.0), t(8.0)], ms_(1.0)).unwrap();
        assert!((h.as_millis() - 200.0).abs() < 1e-9);
        // Irrational-ish period w.r.t. the resolution is rejected.
        assert!(hyperperiod(&[t(20.5001234)], ms_(1.0)).is_none());
        // One hyperperiod of jobs unrolls cleanly.
        let tasks = [
            PeriodicTask::implicit(0, ms_(20.0), Cycles::new(1.0)),
            PeriodicTask::implicit(1, ms_(50.0), Cycles::new(1.0)),
        ];
        let h = hyperperiod(&tasks, ms_(1.0)).unwrap();
        let jobs = unroll(&tasks, h).unwrap();
        assert_eq!(jobs.len(), 5 + 2);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rejects_zero_period() {
        let _ = PeriodicTask::implicit(0, Time::ZERO, Cycles::new(1.0));
    }
}
