//! The paper's Table 4 parameter grid, verbatim.
//!
//! `*` in the paper marks the default used when sweeping another parameter;
//! the `DEFAULT_*` constants here are exactly those starred values.

/// Maximum inter-arrival times `x` (ms) controlling core utilization:
/// `x = 100` ms keeps all 8 cores busy, `x = 800` ms nearly serializes.
pub const X_POINTS_MS: [f64; 8] = [100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0];

/// The starred default `x` (ms).
pub const DEFAULT_X_MS: f64 = 400.0;

/// Memory static power sweep `α_m` (W) — Fig. 7a.
pub const ALPHA_M_POINTS_W: [f64; 8] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];

/// The starred default `α_m` (W).
pub const DEFAULT_ALPHA_M_W: f64 = 4.0;

/// Memory break-even time sweep `ξ_m` (ms) — Fig. 7b.
pub const XI_M_POINTS_MS: [f64; 8] = [15.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0, 70.0];

/// The starred default `ξ_m` (ms).
pub const DEFAULT_XI_M_MS: f64 = 40.0;

/// Utilization scale factors `U` for the benchmark tasks (Fig. 6): period
/// is `|d − r| · U`, so larger `U` means lower utilization.
pub const U_POINTS: [f64; 8] = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];

/// Number of homogeneous cores in the evaluation platform.
pub const NUM_CORES: usize = 8;

/// Random trials averaged per data point (§8.2).
pub const TRIALS_PER_POINT: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_table_4() {
        assert_eq!(X_POINTS_MS.len(), 8);
        assert_eq!(ALPHA_M_POINTS_W.len(), 8);
        assert_eq!(XI_M_POINTS_MS.len(), 8);
        assert_eq!(U_POINTS.len(), 8);
        assert!(X_POINTS_MS.contains(&DEFAULT_X_MS));
        assert!(ALPHA_M_POINTS_W.contains(&DEFAULT_ALPHA_M_W));
        assert!(XI_M_POINTS_MS.contains(&DEFAULT_XI_M_MS));
        // The starred defaults per Table 4.
        assert_eq!(DEFAULT_X_MS, 400.0);
        assert_eq!(DEFAULT_ALPHA_M_W, 4.0);
        assert_eq!(DEFAULT_XI_M_MS, 40.0);
    }
}
