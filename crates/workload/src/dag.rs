//! Precedence-constrained DAG task sets for the federated pipeline.
//!
//! A [`Dag`] is one precedence-constrained application: nodes carry a WCET
//! in cycles plus an optional release offset, directed edges are
//! precedence constraints, and the whole DAG shares one `[release,
//! deadline]` window (optionally a period for hyperperiod analysis). The
//! model is deliberately small — exactly what the federated decomposition
//! in `sdem_core::dag` consumes:
//!
//! * structural validation (duplicate/out-of-range nodes, dangling edges,
//!   cycles) with typed [`DagError`]s folded into the workspace-wide
//!   [`ErrorKind`] taxonomy;
//! * precomputed longest-path *layers* (every edge crosses at least one
//!   layer boundary, so any schedule that respects layer-ordered windows
//!   respects every precedence edge);
//! * bit-stable metrics — [`Dag::total_work`] and
//!   [`Dag::critical_path_work`] are invariant under node relabeling at
//!   the bit level, which the determinism suites pin;
//! * a zero-dependency YAML-subset ingester ([`Dag::from_yaml`],
//!   [`dags_from_yaml`]) whose [`fmt::Display`] output parses back
//!   exactly;
//! * a seeded layered random-DAG generator ([`random`], [`suite`]) on the
//!   vendored ChaCha8/SplitMix64 PRNGs.
//!
//! # Examples
//!
//! ```
//! use sdem_workload::dag::{Dag, DagNode};
//! use sdem_types::{Cycles, Time};
//!
//! let dag = Dag::new(
//!     "pipeline",
//!     Time::ZERO,
//!     Time::from_millis(100.0),
//!     None,
//!     vec![DagNode::new(0, Cycles::new(2.0e6)), DagNode::new(1, Cycles::new(3.0e6))],
//!     vec![(0, 1)],
//! )?;
//! assert_eq!(dag.layer_count(), 2);
//! assert!((dag.critical_path_work().value() - 5.0e6).abs() < 1.0);
//! let text = dag.to_string();
//! assert_eq!(Dag::from_yaml(&text)?, dag);
//! # Ok::<(), sdem_workload::dag::DagError>(())
//! ```

use core::fmt;

use sdem_prng::{ChaCha8Rng, Rng, SeedableRng, SplitMix64};
use sdem_types::{Cycles, ErrorKind, Speed, Time};

use crate::periodic::{hyperperiod, HyperperiodError, PeriodicTask};

/// One DAG node: an id, a WCET in cycles, and a release offset relative
/// to the DAG's release instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagNode {
    /// Node id; the ids of a DAG must form a permutation of `0..n`.
    pub id: usize,
    /// Worst-case execution demand, cycles. Must be positive and finite.
    pub work: Cycles,
    /// Release offset relative to the DAG release (≥ 0, finite).
    pub offset: Time,
}

impl DagNode {
    /// A node with a zero release offset.
    pub fn new(id: usize, work: Cycles) -> Self {
        Self {
            id,
            work,
            offset: Time::ZERO,
        }
    }

    /// A node released `offset` after the DAG's release instant.
    pub fn with_offset(id: usize, work: Cycles, offset: Time) -> Self {
        Self { id, work, offset }
    }
}

/// Why a DAG definition was rejected. All variants are *data* errors —
/// they classify as [`ErrorKind::BadRequest`] in the workspace taxonomy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DagError {
    /// The DAG has no nodes.
    Empty,
    /// Two nodes declare the same id.
    DuplicateNode {
        /// The repeated id.
        id: usize,
    },
    /// A node id is outside `0..n` (ids must be a permutation of `0..n`).
    NodeOutOfRange {
        /// The offending id.
        id: usize,
        /// The node count `n`.
        nodes: usize,
    },
    /// A node's work or offset is non-finite, non-positive work, or a
    /// negative offset.
    InvalidNode {
        /// The offending node id.
        id: usize,
        /// What was wrong, human-readable.
        reason: &'static str,
    },
    /// An edge endpoint names a node that does not exist.
    DanglingEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
        /// The node count `n`.
        nodes: usize,
    },
    /// The same directed edge is declared twice.
    DuplicateEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// The edge relation has a directed cycle (self-loops included).
    Cycle {
        /// The smallest node id on some cycle.
        node: usize,
    },
    /// `deadline ≤ release`, or a non-finite window or period.
    InvalidWindow,
    /// The YAML-subset text could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was expected, human-readable.
        message: String,
    },
}

impl DagError {
    /// Classifies this error in the workspace-wide [`ErrorKind`] taxonomy.
    pub const fn error_kind(&self) -> ErrorKind {
        ErrorKind::BadRequest
    }
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "DAG has no nodes"),
            Self::DuplicateNode { id } => write!(f, "node id {id} declared twice"),
            Self::NodeOutOfRange { id, nodes } => write!(
                f,
                "node id {id} out of range (ids must be a permutation of 0..{nodes})"
            ),
            Self::InvalidNode { id, reason } => write!(f, "node {id}: {reason}"),
            Self::DanglingEdge { from, to, nodes } => write!(
                f,
                "edge [{from}, {to}] dangles (only node ids 0..{nodes} exist)"
            ),
            Self::DuplicateEdge { from, to } => write!(f, "edge [{from}, {to}] declared twice"),
            Self::Cycle { node } => write!(f, "precedence cycle through node {node}"),
            Self::InvalidWindow => write!(
                f,
                "DAG window must satisfy release < deadline with finite times \
                 and a positive finite period"
            ),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated precedence DAG with precomputed layers and metrics.
///
/// Construction ([`Dag::new`]) checks every structural invariant, so any
/// `Dag` value is safe to hand to the federated pipeline. Equality is
/// structural (name, window, nodes, canonically sorted edges).
#[derive(Debug, Clone, PartialEq)]
pub struct Dag {
    name: String,
    release: Time,
    deadline: Time,
    period: Option<Time>,
    works: Vec<Cycles>,
    offsets: Vec<Time>,
    edges: Vec<(usize, usize)>,
    layer_of: Vec<usize>,
    layer_members: Vec<Vec<usize>>,
    topo: Vec<usize>,
    total_work: Cycles,
    critical_path: Cycles,
}

impl Dag {
    /// Validates and builds a DAG.
    ///
    /// Node ids must form a permutation of `0..nodes.len()`; edges must
    /// connect existing nodes, contain no duplicates and no directed
    /// cycle; the window must satisfy `release < deadline` with finite
    /// times. Edges are stored canonically sorted, so two declarations of
    /// the same DAG compare equal regardless of edge order.
    ///
    /// # Errors
    ///
    /// A [`DagError`] naming the first violated invariant.
    pub fn new(
        name: impl Into<String>,
        release: Time,
        deadline: Time,
        period: Option<Time>,
        nodes: Vec<DagNode>,
        mut edges: Vec<(usize, usize)>,
    ) -> Result<Self, DagError> {
        let n = nodes.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        if !(release.is_finite() && deadline.is_finite() && release < deadline) {
            return Err(DagError::InvalidWindow);
        }
        if let Some(p) = period {
            if !(p.is_finite() && p.value() > 0.0) {
                return Err(DagError::InvalidWindow);
            }
        }
        let mut works = vec![Cycles::ZERO; n];
        let mut offsets = vec![Time::ZERO; n];
        let mut seen = vec![false; n];
        for node in &nodes {
            if node.id >= n {
                return Err(DagError::NodeOutOfRange {
                    id: node.id,
                    nodes: n,
                });
            }
            if seen[node.id] {
                return Err(DagError::DuplicateNode { id: node.id });
            }
            seen[node.id] = true;
            if !(node.work.is_finite() && node.work.value() > 0.0) {
                return Err(DagError::InvalidNode {
                    id: node.id,
                    reason: "work must be positive and finite",
                });
            }
            if !(node.offset.is_finite() && node.offset.value() >= 0.0) {
                return Err(DagError::InvalidNode {
                    id: node.id,
                    reason: "offset must be non-negative and finite",
                });
            }
            works[node.id] = node.work;
            offsets[node.id] = node.offset;
        }

        edges.sort_unstable();
        for window in edges.windows(2) {
            if window[0] == window[1] {
                return Err(DagError::DuplicateEdge {
                    from: window[0].0,
                    to: window[0].1,
                });
            }
        }
        for &(from, to) in &edges {
            if from >= n || to >= n {
                return Err(DagError::DanglingEdge { from, to, nodes: n });
            }
            if from == to {
                return Err(DagError::Cycle { node: from });
            }
        }

        // Kahn's algorithm: topological processing computes the
        // longest-path layer of every node and detects cycles (some node
        // never reaches indegree zero).
        let mut indegree = vec![0usize; n];
        let mut successors = vec![Vec::new(); n];
        for &(from, to) in &edges {
            indegree[to] += 1;
            successors[from].push(to);
        }
        let mut layer_of = vec![0usize; n];
        // Longest work-weighted path ending at each node; the maximum over
        // predecessors is order-independent, so the result is bit-stable
        // under relabeling.
        let mut longest = works.clone();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &s in &successors[v] {
                layer_of[s] = layer_of[s].max(layer_of[v] + 1);
                longest[s] = longest[s].max(longest[v] + works[s]);
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if queue.len() < n {
            let node = (0..n).find(|&v| indegree[v] > 0).unwrap_or(0);
            return Err(DagError::Cycle { node });
        }

        let layer_count = layer_of.iter().copied().max().unwrap_or(0) + 1;
        let mut layer_members = vec![Vec::new(); layer_count];
        for v in 0..n {
            layer_members[layer_of[v]].push(v);
        }
        // Canonical member order: work descending, id ascending. The id
        // only breaks ties between equal-work (indistinguishable) nodes,
        // so everything derived from this order is relabeling-invariant.
        for members in &mut layer_members {
            members
                .sort_unstable_by(|&a, &b| works[b].total_cmp(&works[a]).then_with(|| a.cmp(&b)));
        }
        let topo: Vec<usize> = layer_members.iter().flatten().copied().collect();

        // Canonical descending sum order makes the total bit-invariant
        // under relabeling too.
        let mut sorted = works.clone();
        sorted.sort_unstable_by(|a, b| b.total_cmp(a));
        let total_work: Cycles = sorted.into_iter().sum();
        let critical_path = longest.iter().fold(Cycles::ZERO, |acc, &c| acc.max(c));

        Ok(Self {
            name: name.into(),
            release,
            deadline,
            period,
            works,
            offsets,
            edges,
            layer_of,
            layer_members,
            topo,
            total_work,
            critical_path,
        })
    }

    /// The DAG's name (used in reports and YAML).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Release instant of the whole DAG.
    pub fn release(&self) -> Time {
        self.release
    }

    /// Absolute deadline of the whole DAG.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Optional period, for hyperperiod analysis.
    pub fn period(&self) -> Option<Time> {
        self.period
    }

    /// The scheduling window `deadline − release`.
    pub fn span(&self) -> Time {
        self.deadline - self.release
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.works.len()
    }

    /// WCET of node `id`, in cycles.
    pub fn work_of(&self, id: usize) -> Cycles {
        self.works[id]
    }

    /// Release offset of node `id`, relative to [`Dag::release`].
    pub fn offset_of(&self, id: usize) -> Time {
        self.offsets[id]
    }

    /// The canonically sorted precedence edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Longest-path layer of node `id` (sources are layer 0; every edge
    /// crosses at least one layer boundary).
    pub fn layer_of(&self, id: usize) -> usize {
        self.layer_of[id]
    }

    /// Number of layers (the critical path's node count).
    pub fn layer_count(&self) -> usize {
        self.layer_members.len()
    }

    /// Nodes of one layer, in canonical (work desc, id asc) order.
    pub fn layer_members(&self, layer: usize) -> &[usize] {
        &self.layer_members[layer]
    }

    /// A topological order (layer-major, canonical within each layer).
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Total WCET `W`, summed in a canonical order so the result is
    /// bit-identical under node relabeling.
    pub fn total_work(&self) -> Cycles {
        self.total_work
    }

    /// Work along the heaviest precedence chain `L` (the DAG's critical
    /// path), bit-identical under node relabeling.
    pub fn critical_path_work(&self) -> Cycles {
        self.critical_path
    }

    /// Utilization at `speed`: total execution time over the window.
    pub fn utilization(&self, speed: Speed) -> f64 {
        (self.total_work / speed) / self.span()
    }

    /// Whether the DAG needs more than one core at `speed`
    /// (federated density > 1).
    pub fn is_heavy(&self, speed: Speed) -> bool {
        self.utilization(speed) > 1.0
    }

    /// The classic federated lower bound on dedicated cores at `speed`:
    /// `⌈(W − L) / (D − L)⌉` with `W`, `L` in time at `speed` and `D` the
    /// window. `None` when even the critical path misses the deadline.
    pub fn federated_cores(&self, speed: Speed) -> Option<usize> {
        let w = self.total_work / speed;
        let l = self.critical_path / speed;
        let d = self.span();
        if l > d {
            return None;
        }
        if w <= d {
            return Some(1);
        }
        if d <= l {
            // w > d = l: parallelism cannot help a pure chain.
            return None;
        }
        let m = ((w - l) / (d - l)).ceil();
        Some((m as usize).max(1))
    }

    /// Assigns nodes to `cores` with layer-wise LPT (longest processing
    /// time first, least-loaded core, lowest core index on ties).
    ///
    /// Outputs: `assignment[id] = core`, `layer_loads[layer] =` heaviest
    /// core load of that layer; `core_loads` is scratch. All three are
    /// cleared and refilled — with warm capacity the call allocates
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn assign_layered_into(
        &self,
        cores: usize,
        assignment: &mut Vec<usize>,
        layer_loads: &mut Vec<Cycles>,
        core_loads: &mut Vec<Cycles>,
    ) {
        assert!(cores > 0, "assign_layered_into requires at least one core");
        assignment.clear();
        assignment.resize(self.node_count(), 0);
        layer_loads.clear();
        for members in &self.layer_members {
            core_loads.clear();
            core_loads.resize(cores, Cycles::ZERO);
            for &v in members {
                let mut best = 0;
                for c in 1..cores {
                    if core_loads[c] < core_loads[best] {
                        best = c;
                    }
                }
                assignment[v] = best;
                core_loads[best] += self.works[v];
            }
            let heaviest = core_loads.iter().fold(Cycles::ZERO, |acc, &c| acc.max(c));
            layer_loads.push(heaviest);
        }
    }

    /// Work-measured makespan of the layer-wise LPT list schedule on
    /// `cores` cores: the sum of per-layer heaviest core loads. Satisfies
    /// `critical_path_work ≤ makespan ≤ total_work` by construction.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn list_makespan_work(&self, cores: usize) -> Cycles {
        let mut assignment = Vec::new();
        let mut layer_loads = Vec::new();
        let mut core_loads = Vec::new();
        self.assign_layered_into(cores, &mut assignment, &mut layer_loads, &mut core_loads);
        layer_loads.into_iter().sum()
    }
}

// ---------------------------------------------------------------------------
// YAML subset
// ---------------------------------------------------------------------------

impl fmt::Display for Dag {
    /// Renders the canonical YAML-subset form; [`Dag::from_yaml`] parses
    /// it back to an equal `Dag` exactly (times are printed in seconds
    /// with Rust's shortest round-trip `f64` formatting).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "name: {}", self.name)?;
        writeln!(f, "release_s: {}", self.release.as_secs())?;
        writeln!(f, "deadline_s: {}", self.deadline.as_secs())?;
        if let Some(p) = self.period {
            writeln!(f, "period_s: {}", p.as_secs())?;
        }
        writeln!(f, "nodes:")?;
        for id in 0..self.node_count() {
            writeln!(f, "  - id: {id}")?;
            writeln!(f, "    work: {}", self.works[id].value())?;
            if self.offsets[id].value() != 0.0 {
                writeln!(f, "    offset_s: {}", self.offsets[id].as_secs())?;
            }
        }
        writeln!(f, "edges:")?;
        for &(from, to) in &self.edges {
            writeln!(f, "  - [{from}, {to}]")?;
        }
        Ok(())
    }
}

/// Parser state for the YAML subset: which block the cursor is in.
enum Section {
    Preamble,
    Nodes,
    Edges,
}

/// One partially parsed document.
#[derive(Default)]
struct DocBuilder {
    name: Option<String>,
    release: Option<f64>,
    deadline: Option<f64>,
    period: Option<f64>,
    nodes: Vec<DagNode>,
    edges: Vec<(usize, usize)>,
    saw_content: bool,
}

impl DocBuilder {
    fn finish(self, line: usize) -> Result<Dag, DagError> {
        let parse = |message: &str| DagError::Parse {
            line,
            message: message.to_string(),
        };
        let name = self.name.ok_or_else(|| parse("missing `name:`"))?;
        let release = self.release.ok_or_else(|| parse("missing `release_s:`"))?;
        let deadline = self
            .deadline
            .ok_or_else(|| parse("missing `deadline_s:`"))?;
        Dag::new(
            name,
            Time::from_secs(release),
            Time::from_secs(deadline),
            self.period.map(Time::from_secs),
            self.nodes,
            self.edges,
        )
    }
}

fn parse_f64(value: &str, line: usize, field: &str) -> Result<f64, DagError> {
    value.trim().parse().map_err(|_| DagError::Parse {
        line,
        message: format!("`{field}` expects a number, got `{}`", value.trim()),
    })
}

fn parse_usize(value: &str, line: usize, field: &str) -> Result<usize, DagError> {
    value.trim().parse().map_err(|_| DagError::Parse {
        line,
        message: format!(
            "`{field}` expects an unsigned integer, got `{}`",
            value.trim()
        ),
    })
}

/// Parses every document (`---`-separated) of a YAML-subset stream.
///
/// # Errors
///
/// [`DagError::Parse`] with a 1-based line number for malformed text; any
/// other [`DagError`] when a parsed document violates a DAG invariant.
pub fn dags_from_yaml(text: &str) -> Result<Vec<Dag>, DagError> {
    let mut dags = Vec::new();
    let mut doc = DocBuilder::default();
    let mut section = Section::Preamble;
    let mut last_line = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "---" {
            if doc.saw_content {
                dags.push(std::mem::take(&mut doc).finish(line)?);
                section = Section::Preamble;
            }
            continue;
        }
        last_line = line;
        doc.saw_content = true;
        match trimmed {
            "nodes:" => {
                section = Section::Nodes;
                continue;
            }
            "edges:" => {
                section = Section::Edges;
                continue;
            }
            _ => {}
        }
        match section {
            Section::Preamble => {
                let Some((key, value)) = trimmed.split_once(':') else {
                    return Err(DagError::Parse {
                        line,
                        message: format!("expected `key: value`, got `{trimmed}`"),
                    });
                };
                match key.trim() {
                    "name" => doc.name = Some(value.trim().to_string()),
                    "release_s" => doc.release = Some(parse_f64(value, line, "release_s")?),
                    "deadline_s" => doc.deadline = Some(parse_f64(value, line, "deadline_s")?),
                    "period_s" => doc.period = Some(parse_f64(value, line, "period_s")?),
                    other => {
                        return Err(DagError::Parse {
                            line,
                            message: format!("unknown field `{other}`"),
                        })
                    }
                }
            }
            Section::Nodes => {
                if let Some(rest) = trimmed.strip_prefix("- ") {
                    let Some(value) = rest.trim().strip_prefix("id:") else {
                        return Err(DagError::Parse {
                            line,
                            message: format!("expected `- id: N`, got `{trimmed}`"),
                        });
                    };
                    let id = parse_usize(value, line, "id")?;
                    doc.nodes.push(DagNode::new(id, Cycles::ZERO));
                } else {
                    let Some((key, value)) = trimmed.split_once(':') else {
                        return Err(DagError::Parse {
                            line,
                            message: format!("expected a node field, got `{trimmed}`"),
                        });
                    };
                    let Some(node) = doc.nodes.last_mut() else {
                        return Err(DagError::Parse {
                            line,
                            message: "node field before any `- id:` entry".to_string(),
                        });
                    };
                    match key.trim() {
                        "work" => node.work = Cycles::new(parse_f64(value, line, "work")?),
                        "offset_s" => {
                            node.offset = Time::from_secs(parse_f64(value, line, "offset_s")?);
                        }
                        other => {
                            return Err(DagError::Parse {
                                line,
                                message: format!("unknown node field `{other}`"),
                            })
                        }
                    }
                }
            }
            Section::Edges => {
                let inner = trimmed
                    .strip_prefix("- [")
                    .and_then(|r| r.strip_suffix(']'))
                    .ok_or_else(|| DagError::Parse {
                        line,
                        message: format!("expected `- [from, to]`, got `{trimmed}`"),
                    })?;
                let Some((from, to)) = inner.split_once(',') else {
                    return Err(DagError::Parse {
                        line,
                        message: format!("expected `- [from, to]`, got `{trimmed}`"),
                    });
                };
                doc.edges.push((
                    parse_usize(from, line, "edge source")?,
                    parse_usize(to, line, "edge target")?,
                ));
            }
        }
    }
    if doc.saw_content {
        dags.push(doc.finish(last_line.max(1))?);
    }
    if dags.is_empty() {
        return Err(DagError::Parse {
            line: 1,
            message: "no DAG documents in input".to_string(),
        });
    }
    Ok(dags)
}

impl Dag {
    /// Parses a single-document YAML-subset definition.
    ///
    /// # Errors
    ///
    /// Any [`DagError`]; [`DagError::Parse`] when the text contains zero
    /// or more than one document.
    pub fn from_yaml(text: &str) -> Result<Self, DagError> {
        let mut dags = dags_from_yaml(text)?;
        if dags.len() != 1 {
            return Err(DagError::Parse {
                line: 1,
                message: format!("expected exactly one DAG document, got {}", dags.len()),
            });
        }
        Ok(dags.remove(0))
    }
}

/// Renders a suite of DAGs as a `---`-separated multi-document stream —
/// the exact input shape [`dags_from_yaml`] reads.
pub fn dags_to_yaml(dags: &[Dag]) -> String {
    let mut out = String::new();
    for (i, dag) in dags.iter().enumerate() {
        if i > 0 {
            out.push_str("---\n");
        }
        out.push_str(&dag.to_string());
    }
    out
}

// ---------------------------------------------------------------------------
// Seeded generator
// ---------------------------------------------------------------------------

/// Configuration of the layered random-DAG generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagConfig {
    /// Nodes per DAG (≥ 1).
    pub nodes: usize,
    /// Target layer count (clamped to `1..=nodes`). Every layer is
    /// non-empty and every non-source node has a predecessor in the
    /// previous layer, so the realized layering matches the target.
    pub layers: usize,
    /// Probability of each optional extra edge between adjacent layers.
    pub edge_probability: f64,
    /// Per-node WCET range in cycles, inclusive.
    pub work_range: (Cycles, Cycles),
    /// Release instant of each generated DAG.
    pub release: Time,
    /// Absolute deadline of each generated DAG.
    pub deadline: Time,
    /// Optional period carried by each generated DAG.
    pub period: Option<Time>,
}

impl DagConfig {
    /// The paper-flavoured defaults: §8.1.2 WCETs (`[2, 5]·10⁶` cycles),
    /// about three nodes per layer, extra-edge probability 0.35, common
    /// release at zero and the given frame deadline (also the period).
    pub fn paper(nodes: usize, frame: Time) -> Self {
        Self {
            nodes,
            layers: nodes.div_ceil(3),
            edge_probability: 0.35,
            work_range: (Cycles::new(2.0e6), Cycles::new(5.0e6)),
            release: Time::ZERO,
            deadline: frame,
            period: Some(frame),
        }
    }

    fn validate(&self) {
        assert!(self.nodes > 0, "DagConfig requires at least one node");
        assert!(
            self.edge_probability.is_finite() && (0.0..=1.0).contains(&self.edge_probability),
            "edge_probability must be in [0, 1]"
        );
        let (lo, hi) = self.work_range;
        assert!(
            lo.is_finite() && hi.is_finite() && lo.value() > 0.0 && lo <= hi,
            "work_range must be a positive finite interval"
        );
        assert!(
            self.release.is_finite() && self.deadline.is_finite() && self.release < self.deadline,
            "DagConfig window must satisfy release < deadline"
        );
    }
}

/// Generates one random layered DAG. Deterministic in `(config, seed)`.
///
/// # Panics
///
/// Panics on an invalid [`DagConfig`] (programmer error, like the
/// synthetic generators).
pub fn random(config: &DagConfig, seed: u64) -> Dag {
    config.validate();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = config.nodes;
    let layers = config.layers.clamp(1, n);

    // Layer assignment: the first `layers` nodes pin one node per layer
    // (no empty layers), the rest draw uniformly.
    let mut layer_of = vec![0usize; n];
    for (v, layer) in layer_of.iter_mut().enumerate().take(layers) {
        *layer = v;
    }
    for layer in layer_of.iter_mut().skip(layers) {
        *layer = rng.gen_range(0..layers);
    }
    let mut members = vec![Vec::new(); layers];
    for (v, &layer) in layer_of.iter().enumerate() {
        members[layer].push(v);
    }

    let (lo, hi) = (config.work_range.0.value(), config.work_range.1.value());
    let nodes: Vec<DagNode> = (0..n)
        .map(|id| DagNode::new(id, Cycles::new(rng.gen_range(lo..=hi))))
        .collect();

    // Every non-source node gets one mandatory predecessor in the previous
    // layer (so its realized longest-path layer equals its assigned one),
    // then optional extra edges between adjacent layers.
    let mut edges = Vec::new();
    for layer in 1..layers {
        for &v in &members[layer] {
            let prev = &members[layer - 1];
            let pick = prev[rng.gen_range(0..prev.len())];
            edges.push((pick, v));
        }
    }
    for layer in 1..layers {
        for &u in &members[layer - 1] {
            for &v in &members[layer] {
                if edges.contains(&(u, v)) {
                    continue;
                }
                if rng.gen_range(0.0..1.0) < config.edge_probability {
                    edges.push((u, v));
                }
            }
        }
    }

    Dag::new(
        format!("dag-{seed:#x}"),
        config.release,
        config.deadline,
        config.period,
        nodes,
        edges,
    )
    .expect("generator output is structurally valid by construction")
}

/// Generates a suite of `count` DAGs; per-DAG seeds are derived with
/// SplitMix64, so suites with different master seeds are decorrelated.
pub fn suite(config: &DagConfig, count: usize, seed: u64) -> Vec<Dag> {
    let mut sm = SplitMix64::new(seed);
    (0..count)
        .map(|_| random(config, sm.next_value()))
        .collect()
}

/// Hyperperiod of a DAG suite: the LCM of the DAG periods (a DAG without
/// a period contributes its window span), at the given resolution.
///
/// Reuses the periodic machinery — hostile period sets surface as the
/// same typed [`HyperperiodError`]s the periodic helpers report.
///
/// # Errors
///
/// See [`hyperperiod`].
pub fn suite_hyperperiod(dags: &[Dag], resolution: Time) -> Result<Time, HyperperiodError> {
    let carriers: Vec<PeriodicTask> = dags
        .iter()
        .enumerate()
        .map(|(i, d)| {
            PeriodicTask::implicit(i, d.period().unwrap_or_else(|| d.span()), Cycles::new(1.0))
        })
        .collect();
    hyperperiod(&carriers, resolution)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Time {
        Time::from_millis(v)
    }

    fn diamond() -> Dag {
        Dag::new(
            "diamond",
            Time::ZERO,
            ms(100.0),
            None,
            vec![
                DagNode::new(0, Cycles::new(1.0e6)),
                DagNode::new(1, Cycles::new(2.0e6)),
                DagNode::new(2, Cycles::new(3.0e6)),
                DagNode::new(3, Cycles::new(1.5e6)),
            ],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn diamond_layers_and_metrics() {
        let d = diamond();
        assert_eq!(d.layer_count(), 3);
        assert_eq!(d.layer_of(0), 0);
        assert_eq!(d.layer_of(1), 1);
        assert_eq!(d.layer_of(2), 1);
        assert_eq!(d.layer_of(3), 2);
        // Layer 1 canonical order: heavier node 2 first.
        assert_eq!(d.layer_members(1), &[2, 1]);
        assert!((d.total_work().value() - 7.5e6).abs() < 1.0);
        // Critical path: 0 → 2 → 3.
        assert!((d.critical_path_work().value() - 5.5e6).abs() < 1.0);
        assert_eq!(d.topo_order().len(), 4);
        // Makespan is sandwiched for every core count.
        for cores in 1..=4 {
            let mk = d.list_makespan_work(cores);
            assert!(d.critical_path_work() <= mk && mk <= d.total_work());
        }
    }

    #[test]
    fn structural_errors_are_typed() {
        let node = |id| DagNode::new(id, Cycles::new(1.0e6));
        let win = (Time::ZERO, ms(10.0));
        assert_eq!(
            Dag::new("e", win.0, win.1, None, vec![], vec![]),
            Err(DagError::Empty)
        );
        assert_eq!(
            Dag::new("d", win.0, win.1, None, vec![node(0), node(0)], vec![]),
            Err(DagError::DuplicateNode { id: 0 })
        );
        assert_eq!(
            Dag::new("r", win.0, win.1, None, vec![node(0), node(2)], vec![]),
            Err(DagError::NodeOutOfRange { id: 2, nodes: 2 })
        );
        assert_eq!(
            Dag::new("g", win.0, win.1, None, vec![node(0)], vec![(0, 1)]),
            Err(DagError::DanglingEdge {
                from: 0,
                to: 1,
                nodes: 1
            })
        );
        assert_eq!(
            Dag::new(
                "c",
                win.0,
                win.1,
                None,
                vec![node(0), node(1)],
                vec![(0, 1), (1, 0)]
            ),
            Err(DagError::Cycle { node: 0 })
        );
        assert_eq!(
            Dag::new(
                "dup",
                win.0,
                win.1,
                None,
                vec![node(0), node(1)],
                vec![(0, 1), (0, 1)]
            ),
            Err(DagError::DuplicateEdge { from: 0, to: 1 })
        );
        assert_eq!(
            Dag::new("w", ms(10.0), ms(10.0), None, vec![node(0)], vec![]),
            Err(DagError::InvalidWindow)
        );
        assert_eq!(
            Dag::new(
                "z",
                win.0,
                win.1,
                None,
                vec![DagNode::new(0, Cycles::ZERO)],
                vec![]
            ),
            Err(DagError::InvalidNode {
                id: 0,
                reason: "work must be positive and finite"
            })
        );
        // Every error classifies as bad-request.
        assert_eq!(DagError::Empty.error_kind(), ErrorKind::BadRequest);
    }

    #[test]
    fn yaml_round_trips_and_rejects_garbage() {
        let d = diamond();
        let text = d.to_string();
        assert_eq!(Dag::from_yaml(&text).unwrap(), d);

        // Multi-document stream.
        let suite = vec![d.clone(), diamond()];
        let stream = dags_to_yaml(&suite);
        assert_eq!(dags_from_yaml(&stream).unwrap(), suite);

        // Comments and blank lines are tolerated.
        let commented = format!("# a comment\n\n{text}");
        assert_eq!(Dag::from_yaml(&commented).unwrap(), d);

        for garbage in [
            "",
            "name only",
            "name: x\nrelease_s: nope\ndeadline_s: 1\nnodes:\n  - id: 0\n    work: 1\nedges:\n",
            "name: x\nrelease_s: 0\ndeadline_s: 1\nnodes:\n    work: 1\nedges:\n",
            "name: x\nrelease_s: 0\ndeadline_s: 1\nnodes:\n  - id: 0\n    work: 1\nedges:\n  - 0 1\n",
            "name: x\nrelease_s: 0\ndeadline_s: 1\nmystery: 3\n",
            "name: x\ndeadline_s: 1\nnodes:\n  - id: 0\n    work: 1\nedges:\n",
        ] {
            assert!(dags_from_yaml(garbage).is_err(), "accepted: {garbage:?}");
        }
    }

    #[test]
    fn generator_is_deterministic_and_layered() {
        let cfg = DagConfig::paper(12, ms(100.0));
        let a = random(&cfg, 7);
        let b = random(&cfg, 7);
        assert_eq!(a, b);
        assert_ne!(a, random(&cfg, 8));
        assert_eq!(a.node_count(), 12);
        assert_eq!(a.layer_count(), cfg.layers);
        // Every non-source node has a predecessor edge (by construction).
        for v in 0..a.node_count() {
            if a.layer_of(v) > 0 {
                assert!(a.edges().iter().any(|&(_, to)| to == v));
            }
        }
        let s = suite(&cfg, 4, 99);
        assert_eq!(s.len(), 4);
        assert_eq!(s, suite(&cfg, 4, 99));
    }

    #[test]
    fn federated_bound_classifies() {
        let d = diamond();
        let fast = Speed::from_mhz(1000.0);
        assert!(!d.is_heavy(fast));
        assert_eq!(d.federated_cores(fast), Some(1));
        // At a speed where even the critical path cannot finish: None.
        let crawl = Speed::from_mhz(0.01);
        assert_eq!(d.federated_cores(crawl), None);
        // Heavy but parallelizable: W/s > D ≥ L/s.
        let s = Speed::from_mhz(0.1); // W = 75 s, L = 55 s… too slow
        assert_eq!(d.federated_cores(s), None);
        let s = Speed::from_mhz(1.05); // W ≈ 7.14 s… window 0.1 s — no.
        assert_eq!(d.federated_cores(s), None);
        // Construct a genuinely heavy-but-feasible DAG: wide fan-out.
        let wide = Dag::new(
            "wide",
            Time::ZERO,
            ms(100.0),
            None,
            (0..8)
                .map(|id| DagNode::new(id, Cycles::new(4.0e6)))
                .collect(),
            vec![],
        )
        .unwrap();
        let s = Speed::from_mhz(100.0); // W = 320 ms, L = 40 ms, D = 100 ms
        assert!(wide.is_heavy(s));
        // ⌈(320 − 40) / (100 − 40)⌉ = ⌈4.67⌉ = 5.
        assert_eq!(wide.federated_cores(s), Some(5));
    }

    #[test]
    fn suite_hyperperiod_reuses_periodic_errors() {
        let cfg = DagConfig::paper(4, ms(40.0));
        let mut dags = suite(&cfg, 2, 3);
        let h = suite_hyperperiod(&dags, ms(1.0)).unwrap();
        assert!((h.as_millis() - 40.0).abs() < 1e-9);
        // Mixed periods LCM.
        let cfg2 = DagConfig {
            period: Some(ms(60.0)),
            deadline: ms(60.0),
            ..cfg
        };
        dags.push(random(&cfg2, 4));
        let h = suite_hyperperiod(&dags, ms(1.0)).unwrap();
        assert!((h.as_millis() - 120.0).abs() < 1e-9);
        // A period that is not a multiple of the resolution is the same
        // typed error the periodic helpers report.
        let cfg3 = DagConfig {
            period: Some(ms(7.30001)),
            deadline: ms(7.30001),
            ..cfg
        };
        assert_eq!(
            suite_hyperperiod(&[random(&cfg3, 1)], ms(1.0)),
            Err(HyperperiodError::NotAMultiple { index: 0 })
        );
    }

    #[test]
    fn display_error_messages_name_the_problem() {
        let e = DagError::Parse {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 3: boom");
        assert!(DagError::Cycle { node: 2 }.to_string().contains("node 2"));
        assert!(DagError::DanglingEdge {
            from: 1,
            to: 9,
            nodes: 3
        }
        .to_string()
        .contains("[1, 9]"));
    }
}
