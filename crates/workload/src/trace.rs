//! Streaming arrival traces for online replay: hyperperiod-expanded
//! periodic sets merged with an open-loop Poisson mix.
//!
//! The ROADMAP's online-traffic item wants *millions* of arrival events
//! streamed through the solvers the way a real deployment would see
//! them. This module provides that traffic source as a seeded iterator:
//!
//! * **Periodic streams** (Huang et al., leakage-aware reallocation for
//!   periodic tasks): each of [`TraceSpec::sets`] seeded periodic task
//!   systems is expanded over one hyperperiod via
//!   [`periodic::hyperperiod`](crate::periodic::hyperperiod) +
//!   [`periodic::unroll`](crate::periodic::unroll), and re-released every
//!   hyperperiod — a replanning request whose job windows are *relative*
//!   to the window start, so the exact same (canonicalizable) job set
//!   recurs each hyperperiod.
//! * **An open-loop Poisson stream** (Trehan et al., memory-intensive
//!   parallel workloads): sporadic request shapes drawn from a finite
//!   seeded pool, released with exponential inter-arrivals whose rate is
//!   set so a [`TraceSpec::poisson`] fraction of all events is Poisson.
//!
//! The iterator holds only the shape pool and per-stream cursors —
//! events are *generated*, never materialized, so a billion-event trace
//! costs the same memory as a ten-event one. Event `seq` → content is a
//! pure function of the spec, which is what lets a crash-recovery replay
//! regenerate the exact stream and skip already-journaled sequences.

use core::fmt;

use sdem_prng::{ChaCha8Rng, Rng, SeedableRng, SplitMix64};
use sdem_types::{Cycles, Time};

use crate::periodic::{hyperperiod, unroll, PeriodicTask};

/// Domain-separation tags for per-stream seed derivation.
const TAG_PERIODIC: u64 = 0x7E81_0D1C;
const TAG_SPORADIC: u64 = 0x5704_AD1C;
const TAG_ROTATION: u64 = 0x4014_7E00;
const TAG_POISSON: u64 = 0x4015_5011;

/// Harmonic period menu bases (milliseconds); each set draws its periods
/// as `base · 2^k`, so a set's hyperperiod stays ≤ `base · 8` ms.
const PERIOD_BASES_MS: [f64; 3] = [10.0, 15.0, 25.0];
const PERIOD_MULTIPLIERS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// Parameters of a streaming arrival trace. The canonical rendering
/// ([`fmt::Display`]) is the identity a replay journal records, so two
/// runs agree on the trace if and only if their spec strings match.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Master seed; every stream derives its own decorrelated seed.
    pub seed: u64,
    /// Number of distinct periodic task systems (each one stream).
    pub sets: usize,
    /// Periodic tasks per system.
    pub tasks: usize,
    /// Fraction of all arrival events carried by the Poisson stream,
    /// `0 ≤ poisson < 1` (0 disables the stream).
    pub poisson: f64,
    /// Size of the sporadic shape pool the Poisson stream draws from.
    pub shapes: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        Self {
            seed: 0x7ACE,
            sets: 4,
            tasks: 6,
            poisson: 0.25,
            shapes: 32,
        }
    }
}

impl fmt::Display for TraceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={:#x},sets={},tasks={},poisson={},shapes={}",
            self.seed, self.sets, self.tasks, self.poisson, self.shapes
        )
    }
}

impl TraceSpec {
    /// Parses a `key=value` comma list (`seed=0x7,sets=4,tasks=6,
    /// poisson=0.25,shapes=32`); omitted keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Unknown keys, unparsable values and out-of-range parameters are
    /// reported as human-readable strings (the CLI maps them to usage
    /// errors).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("trace spec: `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |k: &str, v: &str| format!("trace spec: `{k}` has unparsable value `{v}`");
            match key {
                "seed" => {
                    out.seed = match value
                        .strip_prefix("0x")
                        .or_else(|| value.strip_prefix("0X"))
                    {
                        Some(hex) => u64::from_str_radix(hex, 16),
                        None => value.parse(),
                    }
                    .map_err(|_| bad(key, value))?;
                }
                "sets" => out.sets = value.parse().map_err(|_| bad(key, value))?,
                "tasks" => out.tasks = value.parse().map_err(|_| bad(key, value))?,
                "poisson" => out.poisson = value.parse().map_err(|_| bad(key, value))?,
                "shapes" => out.shapes = value.parse().map_err(|_| bad(key, value))?,
                other => return Err(format!("trace spec: unknown key `{other}`")),
            }
        }
        out.validate()?;
        Ok(out)
    }

    fn validate(&self) -> Result<(), String> {
        if self.sets == 0 {
            return Err("trace spec: `sets` must be at least 1".into());
        }
        if self.tasks == 0 {
            return Err("trace spec: `tasks` must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.poisson) {
            return Err(format!(
                "trace spec: `poisson` must be in [0, 1), got {}",
                self.poisson
            ));
        }
        if self.poisson > 0.0 && self.shapes == 0 {
            return Err("trace spec: `poisson` > 0 needs `shapes` ≥ 1".into());
        }
        Ok(())
    }
}

/// One job row of a request shape, in the wire's task-row units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRow {
    /// Job id, unique within the shape.
    pub id: usize,
    /// Release relative to the request's window start, milliseconds.
    pub release_ms: f64,
    /// Absolute deadline relative to the window start, milliseconds.
    pub deadline_ms: f64,
    /// Execution demand, cycles.
    pub work_cycles: f64,
}

/// One timestamped arrival: request `seq` arrives at `at_ms` carrying
/// the job rows of `shape`, rotated by `rotation` (a byte-exact row
/// rotation — the permutation the serve cache canonicalizes away).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalEvent {
    /// Zero-based event sequence number (also the request id).
    pub seq: u64,
    /// Arrival timestamp, milliseconds since trace start.
    pub at_ms: f64,
    /// Index into [`ArrivalTrace::shape_rows`].
    pub shape: usize,
    /// Row rotation applied when the request is rendered.
    pub rotation: usize,
}

struct PeriodicStream {
    shape: usize,
    hyperperiod_ms: f64,
    /// Next window index to release (next arrival at `k · H`).
    k: u64,
    rotation: SplitMix64,
}

struct PoissonStream {
    next_at_ms: f64,
    /// Expected arrivals per millisecond.
    rate_per_ms: f64,
    rng: SplitMix64,
}

/// The streaming trace generator. An infinite, seeded iterator of
/// [`ArrivalEvent`]s in nondecreasing timestamp order; take as many as
/// the replay needs.
pub struct ArrivalTrace {
    shapes: Vec<Vec<JobRow>>,
    periodic: Vec<PeriodicStream>,
    poisson: Option<PoissonStream>,
    seq: u64,
}

impl ArrivalTrace {
    /// Builds the generator: materializes the (small) shape pool, leaves
    /// everything else to be generated on demand.
    ///
    /// # Errors
    ///
    /// Propagates spec validation failures as strings. Periodic-shape
    /// construction itself cannot fail: the harmonic period menu keeps
    /// every hyperperiod within `base · 8` ms, far from
    /// [`HyperperiodError::Overflow`](crate::periodic::HyperperiodError)
    /// territory.
    pub fn new(spec: &TraceSpec) -> Result<Self, String> {
        spec.validate()?;
        let mut shapes = Vec::with_capacity(spec.sets + spec.shapes);
        let mut periodic = Vec::with_capacity(spec.sets);

        for set in 0..spec.sets {
            let seed = SplitMix64::mix(&[spec.seed, TAG_PERIODIC, set as u64]);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let base = PERIOD_BASES_MS[rng.gen_range(0usize..PERIOD_BASES_MS.len())];
            let tasks: Vec<PeriodicTask> = (0..spec.tasks)
                .map(|id| {
                    let mult = PERIOD_MULTIPLIERS[rng.gen_range(0usize..PERIOD_MULTIPLIERS.len())];
                    let period_ms = base * mult;
                    // Per-task utilization share at a 100 MHz reference:
                    // work = u · period · 1e5 cycles/ms.
                    let u = rng.gen_range(0.03f64..0.15);
                    PeriodicTask::implicit(
                        id,
                        Time::from_millis(period_ms),
                        Cycles::new(u * period_ms * 1.0e5),
                    )
                })
                .collect();
            let h = hyperperiod(&tasks, Time::from_millis(1.0))
                .map_err(|e| format!("trace set {set}: {e}"))?;
            let jobs = unroll(&tasks, h).map_err(|e| format!("trace set {set}: {e}"))?;
            let rows: Vec<JobRow> = jobs
                .iter()
                .map(|t| JobRow {
                    id: t.id().0,
                    release_ms: t.release().as_millis(),
                    deadline_ms: t.deadline().as_millis(),
                    work_cycles: t.work().value(),
                })
                .collect();
            periodic.push(PeriodicStream {
                shape: shapes.len(),
                hyperperiod_ms: h.as_millis(),
                k: 0,
                rotation: SplitMix64::new(SplitMix64::mix(&[spec.seed, TAG_ROTATION, set as u64])),
            });
            shapes.push(rows);
        }

        for shape in 0..spec.shapes {
            let seed = SplitMix64::mix(&[spec.seed, TAG_SPORADIC, shape as u64]);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(1usize..=6);
            let rows: Vec<JobRow> = (0..n)
                .map(|id| {
                    let release_ms = rng.gen_range(0.0f64..10.0);
                    let window_ms = rng.gen_range(15.0f64..80.0);
                    JobRow {
                        id,
                        release_ms,
                        deadline_ms: release_ms + window_ms,
                        work_cycles: rng.gen_range(1.0e5f64..6.0e6),
                    }
                })
                .collect();
            shapes.push(rows);
        }

        let poisson = (spec.poisson > 0.0).then(|| {
            // Periodic streams fire at Σ 1/Hᵢ events per ms; pick λ so the
            // Poisson stream carries a `poisson` fraction of all events.
            let periodic_rate: f64 = periodic.iter().map(|s| 1.0 / s.hyperperiod_ms).sum();
            PoissonStream {
                next_at_ms: 0.0,
                rate_per_ms: periodic_rate * spec.poisson / (1.0 - spec.poisson),
                rng: SplitMix64::new(SplitMix64::mix(&[spec.seed, TAG_POISSON])),
            }
        });

        Ok(Self {
            shapes,
            periodic,
            poisson,
            seq: 0,
        })
    }

    /// Job rows of a shape, window-relative (shared by every event that
    /// references the shape — the replay renders rotations on the fly).
    pub fn shape_rows(&self, shape: usize) -> &[JobRow] {
        &self.shapes[shape]
    }

    /// Number of shapes in the pool (periodic sets first, then the
    /// sporadic pool).
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Number of periodic shapes (indices `0..periodic_shapes()` are
    /// hyperperiod windows; the rest are sporadic).
    pub fn periodic_shapes(&self) -> usize {
        self.periodic.len()
    }
}

impl Iterator for ArrivalTrace {
    type Item = ArrivalEvent;

    /// The earliest pending arrival across all streams; ties break
    /// toward the lowest-indexed periodic stream, then Poisson, keeping
    /// the merge order deterministic.
    fn next(&mut self) -> Option<ArrivalEvent> {
        let mut best: Option<(f64, usize)> = None; // (at_ms, stream index; periodic first)
        for (i, s) in self.periodic.iter().enumerate() {
            let at = s.k as f64 * s.hyperperiod_ms;
            if best.is_none_or(|(t, _)| at < t) {
                best = Some((at, i));
            }
        }
        let poisson_at = self.poisson.as_ref().map(|p| p.next_at_ms);
        let use_poisson = match (best, poisson_at) {
            (None, Some(_)) => true,
            (Some((t, _)), Some(p)) => p < t,
            _ => false,
        };

        let seq = self.seq;
        self.seq += 1;
        let event = if use_poisson {
            let p = self.poisson.as_mut().expect("poisson stream exists");
            let at_ms = p.next_at_ms;
            let sporadic = self.shapes.len() - self.periodic.len();
            let shape = self.periodic.len() + (p.rng.next_value() % sporadic as u64) as usize;
            let rotation = (p.rng.next_value() % self.shapes[shape].len() as u64) as usize;
            // Exponential inter-arrival via inversion; 1 − u ∈ (0, 1].
            let u = (p.rng.next_value() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            p.next_at_ms = at_ms + (-(1.0 - u).ln()) / p.rate_per_ms;
            ArrivalEvent {
                seq,
                at_ms,
                shape,
                rotation,
            }
        } else {
            let (at_ms, i) = best.expect("at least one periodic stream");
            let s = &mut self.periodic[i];
            s.k += 1;
            let shape = s.shape;
            let rotation = (s.rotation.next_value() % self.shapes[shape].len() as u64) as usize;
            ArrivalEvent {
                seq,
                at_ms,
                shape,
                rotation,
            }
        };
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_its_canonical_rendering() {
        let spec = TraceSpec {
            seed: 0x2A,
            sets: 3,
            tasks: 5,
            poisson: 0.4,
            shapes: 16,
        };
        let rendered = spec.to_string();
        assert_eq!(TraceSpec::parse(&rendered).unwrap(), spec);
        // Defaults apply for omitted keys; whitespace tolerated.
        let partial = TraceSpec::parse("seed=7, sets=2").unwrap();
        assert_eq!(partial.seed, 7);
        assert_eq!(partial.sets, 2);
        assert_eq!(partial.tasks, TraceSpec::default().tasks);
    }

    #[test]
    fn spec_rejections_are_explicit() {
        for bad in [
            "seed",                 // not key=value
            "seed=xyz",             // unparsable
            "sets=0",               // empty
            "tasks=0",              // empty
            "poisson=1.0",          // out of range
            "poisson=-0.1",         // out of range
            "unknown=3",            // unknown key
            "poisson=0.5,shapes=0", // poisson needs a pool
        ] {
            assert!(TraceSpec::parse(bad).is_err(), "spec `{bad}` must fail");
        }
    }

    #[test]
    fn trace_is_deterministic_and_timestamp_ordered() {
        let spec = TraceSpec::default();
        let a: Vec<ArrivalEvent> = ArrivalTrace::new(&spec).unwrap().take(5_000).collect();
        let b: Vec<ArrivalEvent> = ArrivalTrace::new(&spec).unwrap().take(5_000).collect();
        assert_eq!(a, b, "same spec ⇒ same stream");
        for (i, w) in a.windows(2).enumerate() {
            assert!(w[0].at_ms <= w[1].at_ms, "event {i} out of order");
        }
        for (i, e) in a.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "seqs are consecutive from 0");
        }
        // A different seed decorrelates the stream.
        let other = ArrivalTrace::new(&TraceSpec {
            seed: 0xBEEF,
            ..spec
        })
        .unwrap()
        .take(5_000)
        .collect::<Vec<_>>();
        assert_ne!(a, other);
    }

    #[test]
    fn poisson_fraction_is_respected() {
        let spec = TraceSpec {
            poisson: 0.5,
            ..TraceSpec::default()
        };
        let trace = ArrivalTrace::new(&spec).unwrap();
        let periodic_shapes = trace.periodic_shapes();
        let events: Vec<ArrivalEvent> = trace.take(20_000).collect();
        let poisson = events.iter().filter(|e| e.shape >= periodic_shapes).count() as f64;
        let fraction = poisson / events.len() as f64;
        assert!(
            (fraction - 0.5).abs() < 0.05,
            "poisson fraction {fraction} far from 0.5"
        );
    }

    #[test]
    fn shapes_are_valid_request_material() {
        let trace = ArrivalTrace::new(&TraceSpec::default()).unwrap();
        assert!(trace.shape_count() > 0);
        for shape in 0..trace.shape_count() {
            let rows = trace.shape_rows(shape);
            assert!(!rows.is_empty());
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row.id, rows[i].id);
                assert!(row.release_ms >= 0.0);
                assert!(row.deadline_ms > row.release_ms, "window must be non-empty");
                assert!(row.work_cycles.is_finite() && row.work_cycles > 0.0);
            }
            // Ids unique within the shape (the wire rejects duplicates).
            let mut ids: Vec<usize> = rows.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), rows.len());
        }
    }

    #[test]
    fn zero_poisson_is_pure_periodic_and_millions_stream_flat() {
        let spec = TraceSpec {
            poisson: 0.0,
            shapes: 0,
            ..TraceSpec::default()
        };
        let trace = ArrivalTrace::new(&spec).unwrap();
        let periodic_shapes = trace.periodic_shapes();
        // Iterate a large count without materializing: constant memory,
        // every event periodic.
        let mut count = 0u64;
        for e in trace.take(1_000_000) {
            assert!(e.shape < periodic_shapes);
            count += 1;
        }
        assert_eq!(count, 1_000_000);
    }
}
