//! Property suite for the DAG workload model.
//!
//! Four families, each over hundreds of seeded random DAGs, pin the
//! invariants the federated pipeline builds on:
//!
//! 1. every generated DAG is acyclic, with a valid topological order and
//!    strictly increasing layers along every edge;
//! 2. node relabeling is a pure renaming — critical path, total WCET,
//!    federated bound, layered allocation and list makespan are all
//!    bit-identical under any permutation of node ids;
//! 3. the work-measured list makespan is sandwiched between the critical
//!    path and the total WCET for every core count;
//! 4. the YAML subset round-trips exactly: parse(display(dag)) is the
//!    same `Dag` and the same bytes.

use sdem_prng::{ChaCha8Rng, Rng, SeedableRng, SplitMix64};
use sdem_types::{Speed, Time};
use sdem_workload::dag::{self, Dag, DagConfig, DagNode};

/// Seeded DAGs per property (the suite's sampling budget).
const DAGS_PER_PROPERTY: u64 = 200;

/// A seed-varied generator config: node counts 3..=12, frame 120 ms.
fn config_for(seed: u64) -> DagConfig {
    DagConfig::paper(3 + (seed % 10) as usize, Time::from_millis(120.0))
}

fn generate(seed: u64) -> Dag {
    dag::random(&config_for(seed), SplitMix64::mix(&[0xDA6_9001, seed]))
}

/// A seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Rebuilds `dag` with node `v` renamed to `perm[v]`.
fn relabeled(dag: &Dag, perm: &[usize]) -> Dag {
    let nodes = (0..dag.node_count())
        .map(|v| DagNode::with_offset(perm[v], dag.work_of(v), dag.offset_of(v)))
        .collect();
    let edges = dag
        .edges()
        .iter()
        .map(|&(a, b)| (perm[a], perm[b]))
        .collect();
    Dag::new(
        dag.name(),
        dag.release(),
        dag.deadline(),
        dag.period(),
        nodes,
        edges,
    )
    .expect("a permutation of a valid DAG is a valid DAG")
}

#[test]
fn generated_dags_are_acyclic_with_consistent_layers() {
    for seed in 0..DAGS_PER_PROPERTY {
        let dag = generate(seed);
        let n = dag.node_count();

        // The topological order is a permutation of the nodes...
        let topo = dag.topo_order();
        assert_eq!(topo.len(), n, "seed {seed}");
        let mut position = vec![usize::MAX; n];
        for (i, &v) in topo.iter().enumerate() {
            assert_eq!(position[v], usize::MAX, "seed {seed}: node {v} repeats");
            position[v] = i;
        }
        // ...that respects every edge, and layers strictly increase along
        // edges (the acyclicity witness the windowing relies on).
        for &(a, b) in dag.edges() {
            assert!(position[a] < position[b], "seed {seed}: edge ({a},{b})");
            assert!(
                dag.layer_of(a) < dag.layer_of(b),
                "seed {seed}: edge ({a},{b}) layers {} -> {}",
                dag.layer_of(a),
                dag.layer_of(b)
            );
        }
        // Layer membership partitions the node set consistently.
        let mut seen = 0;
        for layer in 0..dag.layer_count() {
            for &v in dag.layer_members(layer) {
                assert_eq!(dag.layer_of(v), layer, "seed {seed}");
                seen += 1;
            }
        }
        assert_eq!(seen, n, "seed {seed}: layers must partition the nodes");
        assert!(dag.critical_path_work() <= dag.total_work(), "seed {seed}");
    }
}

#[test]
fn relabeling_nodes_changes_nothing_but_the_names() {
    let speeds = [Speed::from_mhz(1900.0), Speed::from_mhz(600.0)];
    for seed in 0..DAGS_PER_PROPERTY {
        let base = generate(seed);
        let perm = permutation(base.node_count(), SplitMix64::mix(&[0x9E37, seed]));
        let renamed = relabeled(&base, &perm);

        assert_eq!(
            base.total_work().value().to_bits(),
            renamed.total_work().value().to_bits(),
            "seed {seed}: total WCET must be bit-identical"
        );
        assert_eq!(
            base.critical_path_work().value().to_bits(),
            renamed.critical_path_work().value().to_bits(),
            "seed {seed}: critical path must be bit-identical"
        );
        for speed in speeds {
            assert_eq!(
                base.federated_cores(speed),
                renamed.federated_cores(speed),
                "seed {seed}: federated bound"
            );
        }
        for (v, &pv) in perm.iter().enumerate() {
            assert_eq!(
                base.layer_of(v),
                renamed.layer_of(pv),
                "seed {seed}: layer of node {v}"
            );
        }
        // The layered LPT allocation commutes with the renaming, and the
        // per-layer heaviest loads (hence the makespan) are bit-identical.
        for cores in 1..=4 {
            let mut a = (Vec::new(), Vec::new(), Vec::new());
            let mut b = (Vec::new(), Vec::new(), Vec::new());
            base.assign_layered_into(cores, &mut a.0, &mut a.1, &mut a.2);
            renamed.assign_layered_into(cores, &mut b.0, &mut b.1, &mut b.2);
            for (v, &pv) in perm.iter().enumerate() {
                assert_eq!(
                    a.0[v], b.0[pv],
                    "seed {seed}: allocation of node {v} at {cores} cores"
                );
            }
            assert_eq!(a.1.len(), b.1.len(), "seed {seed}");
            for (la, lb) in a.1.iter().zip(&b.1) {
                assert_eq!(
                    la.value().to_bits(),
                    lb.value().to_bits(),
                    "seed {seed}: layer load at {cores} cores"
                );
            }
            assert_eq!(
                base.list_makespan_work(cores).value().to_bits(),
                renamed.list_makespan_work(cores).value().to_bits(),
                "seed {seed}: makespan at {cores} cores"
            );
        }
    }
}

#[test]
fn list_makespan_is_sandwiched_between_critical_path_and_total_work() {
    for seed in 0..DAGS_PER_PROPERTY {
        let dag = generate(seed);
        let cp = dag.critical_path_work().value();
        let total = dag.total_work().value();
        let mut previous = f64::INFINITY;
        for cores in 1..=4 {
            let makespan = dag.list_makespan_work(cores).value();
            // The bounds are exact in value; allow only summation-order
            // rounding noise (the three quantities accumulate the same
            // works in different orders).
            let ulp_slack = 1e-9 * total;
            assert!(
                cp <= makespan + ulp_slack,
                "seed {seed}: critical path {cp} > makespan {makespan} at {cores} cores"
            );
            assert!(
                makespan <= total + ulp_slack,
                "seed {seed}: makespan {makespan} > total {total} at {cores} cores"
            );
            // More cores can never lengthen the list schedule.
            assert!(
                makespan <= previous + ulp_slack,
                "seed {seed}: makespan grew from {previous} to {makespan} at {cores} cores"
            );
            previous = makespan;
        }
    }
}

#[test]
fn yaml_round_trip_is_exact() {
    for seed in 0..DAGS_PER_PROPERTY {
        let suite = dag::suite(
            &config_for(seed),
            1 + (seed % 3) as usize,
            SplitMix64::mix(&[0x5EED, seed]),
        );
        let text = dag::dags_to_yaml(&suite);
        let parsed = dag::dags_from_yaml(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical YAML must parse: {e}"));
        assert_eq!(parsed, suite, "seed {seed}: parse(display) == identity");
        assert_eq!(
            dag::dags_to_yaml(&parsed),
            text,
            "seed {seed}: display must be a fixed point"
        );
    }
}
