//! Process-level tests of the `sdem-cli serve` daemon and the taxonomy
//! exit codes: spawn the real binary, speak the JSONL protocol over its
//! stdin/stdout, kill it (by closing stdin) and restart it.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_sdem-cli");

fn run_daemon(args: &[&str], input: &str) -> (String, i32) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sdem-cli");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    // Dropping stdin closes the pipe: EOF is the shutdown signal.
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        out.status.code().unwrap_or(-1),
    )
}

fn batch() -> String {
    let mut lines = Vec::new();
    for id in 0..24_u64 {
        let tasks = match id % 4 {
            0 => "[[0,0,40,8e6],[1,0,70,1.2e7]]",
            1 => "[[1,0,70,1.2e7],[0,0,40,8e6]]", // permutation of shape 0
            2 => "[[0,0,50,4e6],[1,10,80,6e6],[2,10,90,2e6]]",
            _ => "[[0,0,60,5e6]]",
        };
        lines.push(format!(
            "{{\"v\":1,\"id\":{id},\"scheme\":\"auto\",\"tasks\":{tasks}}}"
        ));
    }
    lines.push("this is not json".to_string());
    lines.push("{\"v\":99,\"id\":24,\"tasks\":[[0,0,60,5e6]]}".to_string());
    lines.join("\n") + "\n"
}

#[test]
fn daemon_drains_at_eof_and_restarts_byte_identically() {
    let input = batch();
    let (first, code) = run_daemon(&["serve", "--workers", "2"], &input);
    assert_eq!(code, 0, "clean drain must exit 0");
    assert_eq!(
        first.lines().count(),
        26,
        "every line answered exactly once:\n{first}"
    );
    assert!(first.contains("\"kind\":\"bad-request\""), "{first}");
    assert!(first.contains("\"ok\":true"), "{first}");

    // Kill-and-restart smoke: a fresh daemon (different worker count)
    // answers the same batch with the same bytes.
    let (second, code) = run_daemon(&["serve", "--workers", "5"], &input);
    assert_eq!(code, 0);
    assert_eq!(first, second, "responses must not depend on worker count");
}

#[test]
fn serve_metrics_exports_request_counters() {
    let dir = std::env::temp_dir().join("sdem-cli-serve-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve_metrics.json");
    let mp = path.to_str().unwrap();
    let (_, code) = run_daemon(&["serve", "--workers", "1", "--metrics", mp], &batch());
    assert_eq!(code, 0);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"requests_admitted\": 24"), "{text}");
    assert!(text.contains("\"requests_rejected\": 2"), "{text}");
    assert!(text.contains("\"cache_hits\""), "{text}");
    assert!(text.contains("serve/request_ns"), "{text}");

    // The exported file passes the stats validator.
    let status = Command::new(BIN)
        .args(["stats", "--input", mp, "--check"])
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    std::fs::remove_file(&path).ok();
}

fn run_replay(args: &[&str]) -> (String, i32) {
    let out = Command::new(BIN)
        .arg("replay")
        .args(args)
        .stderr(Stdio::null())
        .output()
        .expect("spawn sdem-cli replay");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn replay_resumes_from_its_journal_byte_identically() {
    let dir = std::env::temp_dir().join("sdem-cli-replay");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("replay.journal");
    let jp = journal.to_str().unwrap();
    let trace = "seed=0x7e57,sets=2,tasks=3,poisson=0.3,shapes=8";

    let (clean, code) = run_replay(&["--trace", trace, "--events", "16", "--workers", "1"]);
    assert_eq!(code, 0);
    assert_eq!(clean.lines().count(), 16, "every seq answered:\n{clean}");

    // A journaled run "crashes" (halts) mid-stream…
    std::fs::remove_file(&journal).ok();
    let (partial, code) = run_replay(&[
        "--trace",
        trace,
        "--events",
        "16",
        "--workers",
        "2",
        "--journal",
        jp,
        "--halt-after",
        "6",
    ]);
    assert_eq!(code, 0);
    assert!(clean.starts_with(&partial), "partial output is a prefix");

    // …and a resumed run at yet another worker count replays the rest.
    let (resumed, code) = run_replay(&[
        "--trace",
        trace,
        "--events",
        "16",
        "--workers",
        "4",
        "--resume",
        jp,
    ]);
    assert_eq!(code, 0);
    assert_eq!(
        resumed, clean,
        "resume must be byte-identical to a clean run"
    );

    // --journal and --resume together is a usage error (exit 2).
    let (_, code) = run_replay(&[
        "--trace",
        trace,
        "--events",
        "16",
        "--journal",
        jp,
        "--resume",
        jp,
    ]);
    assert_eq!(code, 2);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn replay_chaos_counters_export_and_validate() {
    let dir = std::env::temp_dir().join("sdem-cli-replay-chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replay_metrics.json");
    let mp = path.to_str().unwrap();
    let (out, code) = run_replay(&[
        "--events",
        "24",
        "--workers",
        "2",
        "--chaos",
        "seed=0x0dd5,panics=2,poison=1,queue-full=1,latency=2",
        "--metrics",
        mp,
    ]);
    assert_eq!(code, 0, "daemon must survive injected panics");
    assert_eq!(out.lines().count(), 24, "every seq answered once:\n{out}");
    assert!(out.contains("\"kind\":\"worker-panic\""), "{out}");
    assert!(out.contains("\"degraded\":true"), "{out}");

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"serve/worker_restarts\": 2"), "{text}");
    assert!(text.contains("\"serve/degraded_responses\": 1"), "{text}");
    let status = Command::new(BIN)
        .args(["stats", "--input", mp, "--check"])
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "exported metrics must pass stats --check");
    std::fs::remove_file(&path).ok();
}

#[test]
fn exit_codes_follow_the_error_taxonomy() {
    // Usage mistakes exit 2.
    let status = Command::new(BIN)
        .arg("frobnicate")
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(2));

    // A scheme rejection exits with the scheme-error code (4).
    let dir = std::env::temp_dir().join("sdem-cli-serve-exit");
    std::fs::create_dir_all(&dir).unwrap();
    let tasks = dir.join("staggered.txt");
    let tp = tasks.to_str().unwrap();
    let status = Command::new(BIN)
        .args([
            "generate",
            "--kind",
            "synthetic",
            "--tasks",
            "6",
            "--seed",
            "2",
            "--out",
            tp,
        ])
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    let status = Command::new(BIN)
        .args([
            "schedule",
            "--input",
            tp,
            "--scheme",
            "cr-alpha-nonzero",
            "--quiet",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(4), "scheme-error must exit 4");
    std::fs::remove_file(&tasks).ok();
}
