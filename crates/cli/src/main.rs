//! `sdem-cli` — generate workloads, schedule them with any SDEM scheme or
//! baseline, and compare energies from the shell.
//!
//! ```text
//! sdem-cli generate --kind synthetic --tasks 40 --x-ms 400 --seed 7 --out tasks.txt
//! sdem-cli schedule --scheme sdem-on --input tasks.txt --gantt
//! sdem-cli compare --input tasks.txt
//! sdem-cli help
//! ```
//!
//! Task files are plain text: one `id release_ms deadline_ms work_cycles`
//! line per task, `#` comments allowed.

mod args;
mod commands;
mod error;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // The bracketed code and the exit status both come from the
            // shared ErrorKind taxonomy (same codes the serve protocol
            // and quarantine records use), so scripts can branch on the
            // failure class without parsing the message.
            eprintln!("error[{}]: {}", e.kind.code(), e);
            eprintln!("run `sdem-cli help` for usage");
            ExitCode::from(e.kind.exit_code())
        }
    }
}
