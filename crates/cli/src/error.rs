//! The CLI's typed error: an [`ErrorKind`] from the shared taxonomy plus
//! a human-readable message.
//!
//! The kind drives the process exit code (`ErrorKind::exit_code`), so
//! scripts can distinguish usage mistakes (exit 2), protocol-level bad
//! requests (exit 3), scheme rejections (exit 4) and so on — the same
//! stable codes the serve wire protocol and quarantine records spell as
//! strings.

use sdem_serve::ApiError;
use sdem_types::ErrorKind;

/// A command failure: taxonomy kind + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Stable machine-readable class; determines the exit code.
    pub kind: ErrorKind,
    /// Human-readable message printed to stderr.
    pub message: String,
}

impl CliError {
    /// An error of `kind` with a message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Legacy string errors are usage mistakes (exit 2), the CLI's historic
/// catch-all.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self::new(ErrorKind::Usage, message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::new(ErrorKind::Usage, message)
    }
}

impl From<ApiError> for CliError {
    fn from(e: ApiError) -> Self {
        Self::new(e.kind, e.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_errors_default_to_usage() {
        let e: CliError = "bad flag".to_string().into();
        assert_eq!(e.kind, ErrorKind::Usage);
        assert_eq!(e.kind.exit_code(), 2);
        assert_eq!(e.to_string(), "bad flag");
    }

    #[test]
    fn api_errors_keep_their_kind() {
        let e: CliError = ApiError::new(ErrorKind::Overloaded, "queue full").into();
        assert_eq!(e.kind, ErrorKind::Overloaded);
        assert_eq!(e.kind.exit_code(), 13);
    }
}
