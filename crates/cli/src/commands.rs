//! Subcommand implementations.

use std::fs;

use sdem_baselines::mbkp::{self, Assignment};
use sdem_baselines::{avr, css, oa, yds};
use sdem_bench::experiment::{mean, run_trial_resampling};
use sdem_bench::figures;
use sdem_core::{agreeable, common_release, online, overhead, solve, Scheme};
use sdem_exec::SweepRunner;
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_sim::{
    power_trace, render_gantt, schedule_stats, simulate_with_options, trace_to_csv, SimOptions,
    SleepPolicy,
};
use sdem_types::{Schedule, TaskSet, Time};
use sdem_workload::dspstone::{stream, Benchmark};
use sdem_workload::synthetic::{self, SyntheticConfig};
use sdem_workload::textfmt as io;

use crate::args::Args;

const HELP: &str = "\
sdem-cli — SDEM energy-minimization toolkit

USAGE:
  sdem-cli generate [--kind synthetic|dspstone|common-release|agreeable]
                    [--tasks N] [--x-ms X] [--u U] [--instances N]
                    [--seed S] [--out FILE]
  sdem-cli schedule --input FILE [--scheme NAME] [--alpha-m W] [--xi-m MS]
                    [--cores N] [--gantt] [--quiet]
  sdem-cli compare  --input FILE [--alpha-m W] [--xi-m MS] [--cores N]
  sdem-cli trace    --input FILE [--scheme NAME] [--samples N] [--out FILE]
                    power-over-time CSV (time_s,cores_w,memory_w,total_w)
  sdem-cli sweep    [--figure fig6|fig7a|fig7b] [--trials N] [--tasks N]
                    [--instances N] [--threads N] [--csv FILE]
                    [--oracle] [--oracle-tol REL]
                    parallel figure sweep; prints trials/sec statistics
  sdem-cli experiment [--kind synthetic|dspstone] [--tasks N] [--x-ms X]
                    [--u U] [--instances N] [--cores N] [--trials N]
                    [--threads N] [--seed S] [--alpha-m W] [--xi-m MS]
                    [--oracle] [--oracle-tol REL]
                    one grid point, parallel replicates, summary savings
  sdem-cli help

Sweeps and experiments fan trials across worker threads; results are
identical for any --threads value (deterministic per-trial seeding).
--oracle cross-checks every trial against the simulator: the SDEM-ON
schedule's analytic energy must match the interval meter, and the meter
must match the event-driven engine, within --oracle-tol (default 1e-6
relative); divergence aborts the sweep. Example:
  sdem-cli sweep --figure fig7a --trials 2 --tasks 12 --oracle

SCHEMES:
  auto                 route from the task-set shape (common release →
                       §4/§7, agreeable → §5 DP, general → SDEM-ON)
  sdem-on (default)    paper §6 online heuristic, bounded to --cores
  cr-alpha-zero        paper §4.1 (common release, α = 0 model)
  cr-alpha-nonzero     paper §4.2 (common release, core sleeping)
  cr-overhead          paper §7 (transition overheads)
  agreeable            paper §5 DP (agreeable deadlines)
  agreeable-strict     §5 DP with overlap-free block repair
  mbkp | mbkps         baseline: round-robin + per-core Optimal Available
  yds | oa | avr | css single-core substrate policies (css = YDS clamped
                       to the joint critical speed; system-wide baseline)

The platform is the paper's: 8 × Cortex-A57 + 50 nm DRAM; --alpha-m and
--xi-m override the memory model (defaults 4 W, 40 ms).
";

/// Dispatches a full command line.
///
/// # Errors
///
/// Human-readable messages for unknown commands, bad options, unreadable
/// files and scheduling failures.
pub fn run(argv: &[String]) -> Result<(), String> {
    let Some(command) = argv.first() else {
        println!("{HELP}");
        return Ok(());
    };
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => generate(&args),
        "schedule" => schedule(&args),
        "compare" => compare(&args),
        "trace" => trace(&args),
        "sweep" => sweep(&args),
        "experiment" => experiment(&args),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn platform_from(args: &Args) -> Result<Platform, String> {
    let alpha_m = args.get_f64("alpha-m", 4.0)?;
    let xi_m = args.get_f64("xi-m", 40.0)?;
    Ok(Platform::new(
        CorePower::cortex_a57(),
        MemoryPower::new(sdem_types::Watts::new(alpha_m)).with_break_even(Time::from_millis(xi_m)),
    ))
}

fn load_tasks(args: &Args) -> Result<TaskSet, String> {
    let path = args
        .get("input")
        .ok_or_else(|| "`--input FILE` is required".to_string())?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    io::from_text(&text)
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args.get_or("kind", "synthetic");
    let seed = args.get_u64("seed", 1)?;
    let tasks = match kind {
        "synthetic" => {
            let cfg = SyntheticConfig::paper(
                args.get_usize("tasks", 40)?,
                Time::from_millis(args.get_f64("x-ms", 400.0)?),
            );
            synthetic::sporadic(&cfg, seed)
        }
        "common-release" => {
            let cfg = SyntheticConfig::paper(args.get_usize("tasks", 40)?, Time::ZERO);
            synthetic::common_release(&cfg, seed)
        }
        "agreeable" => {
            let cfg = SyntheticConfig::paper(
                args.get_usize("tasks", 40)?,
                Time::from_millis(args.get_f64("x-ms", 400.0)?),
            );
            synthetic::agreeable(&cfg, seed)
        }
        "dspstone" => stream(
            &[Benchmark::fft_1024(), Benchmark::matrix_24()],
            args.get_f64("u", 4.0)?,
            args.get_usize("instances", 20)?,
            seed,
        ),
        other => return Err(format!("unknown workload kind `{other}`")),
    };
    let text = io::to_text(&tasks);
    match args.get("out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} tasks to {path}", tasks.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn build_schedule(
    scheme: &str,
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
) -> Result<Schedule, String> {
    let sol = |r: Result<sdem_core::Solution, sdem_core::SdemError>| {
        r.map(sdem_core::Solution::into_schedule)
            .map_err(|e| e.to_string())
    };
    match scheme {
        "auto" => sol(solve(tasks, platform, Scheme::Auto)),
        "sdem-on" => {
            online::schedule_online_bounded(tasks, platform, cores).map_err(|e| e.to_string())
        }
        "cr-alpha-zero" => sol(common_release::schedule_alpha_zero(tasks, platform)),
        "cr-alpha-nonzero" => sol(common_release::schedule_alpha_nonzero(tasks, platform)),
        "cr-overhead" => sol(overhead::schedule_common_release(tasks, platform)),
        "agreeable" => sol(agreeable::schedule(tasks, platform)),
        "agreeable-strict" => sol(agreeable::schedule_strict(tasks, platform)),
        "mbkp" | "mbkps" => mbkp::schedule_online(tasks, platform, cores, Assignment::RoundRobin)
            .map_err(|e| e.to_string()),
        "yds" => yds::schedule_single_core(tasks, platform).map_err(|e| e.to_string()),
        "oa" => oa::schedule_single_core_online(tasks, platform).map_err(|e| e.to_string()),
        "avr" => avr::schedule_single_core(tasks, platform).map_err(|e| e.to_string()),
        "css" => css::schedule_single_core_css(tasks, platform).map_err(|e| e.to_string()),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

fn sim_options(scheme: &str) -> SimOptions {
    let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
    match scheme {
        "mbkp" | "yds" | "oa" | "avr" => SimOptions {
            memory_policy: SleepPolicy::NeverSleep,
            ..profit
        },
        _ => profit,
    }
}

fn schedule(args: &Args) -> Result<(), String> {
    let tasks = load_tasks(args)?;
    let platform = platform_from(args)?;
    let scheme = args.get_or("scheme", "sdem-on");
    let cores = args.get_usize("cores", 8)?;
    let sched = build_schedule(scheme, &tasks, &platform, cores)?;
    sched.validate(&tasks).map_err(|e| e.to_string())?;
    let report = simulate_with_options(&sched, &tasks, &platform, sim_options(scheme))
        .map_err(|e| e.to_string())?;

    if !args.has_flag("quiet") {
        println!(
            "scheme: {scheme}  tasks: {}  cores used: {}",
            tasks.len(),
            sched.cores_used()
        );
        for p in sched.placements() {
            match (p.start(), p.end()) {
                (Some(s), Some(e)) => println!(
                    "  {} on {}: [{:9.3}, {:9.3}] ms, {} segment(s), avg {:7.1} MHz",
                    p.task(),
                    p.core(),
                    s.as_millis(),
                    e.as_millis(),
                    p.segments().len(),
                    (p.executed_work() / p.busy_time()).as_mhz(),
                ),
                _ => println!("  {} on {}: (zero work)", p.task(), p.core()),
            }
        }
    }
    println!("energy: {report}");
    if let Some(stats) = schedule_stats(&sched) {
        println!(
            "stats: span [{:.3}, {:.3}] ms, {} cores, core util {:.1}%, memory util {:.1}%, \
             mean speed {:.1} MHz, peak {:.1} MHz",
            stats.start.as_millis(),
            stats.end.as_millis(),
            stats.cores_used,
            stats.core_utilization * 100.0,
            stats.memory_utilization * 100.0,
            stats.mean_speed.as_mhz(),
            stats.peak_speed.as_mhz(),
        );
    }
    if args.has_flag("gantt") {
        println!("{}", render_gantt(&sched, 96));
    }
    Ok(())
}

fn compare(args: &Args) -> Result<(), String> {
    let tasks = load_tasks(args)?;
    let platform = platform_from(args)?;
    let cores = args.get_usize("cores", 8)?;

    println!(
        "{:16} {:>12} {:>12} {:>12} {:>8}",
        "scheme", "total [J]", "memory [J]", "cores [J]", "sleeps"
    );
    let mut reference: Option<f64> = None;
    for scheme in ["mbkp", "mbkps", "sdem-on"] {
        match build_schedule(scheme, &tasks, &platform, cores) {
            Ok(sched) => {
                let report = simulate_with_options(&sched, &tasks, &platform, sim_options(scheme))
                    .map_err(|e| e.to_string())?;
                let total = report.total().value();
                let vs = match reference {
                    None => {
                        reference = Some(total);
                        String::new()
                    }
                    Some(r) => format!("  ({:+.1}% vs MBKP)", (total / r - 1.0) * 100.0),
                };
                println!(
                    "{:16} {:>12.4} {:>12.4} {:>12.4} {:>8}{vs}",
                    scheme,
                    total,
                    report.memory_total().value(),
                    report.core_total().value(),
                    report.memory_sleeps,
                );
            }
            Err(e) => println!("{scheme:16} infeasible: {e}"),
        }
    }
    Ok(())
}

fn runner_from(args: &Args) -> Result<SweepRunner, String> {
    let mut runner = SweepRunner::new().with_threads(args.get_usize("threads", 0)?);
    let tol = args.get_f64("oracle-tol", sdem_exec::DEFAULT_ORACLE_TOLERANCE)?;
    if args.has_flag("oracle") || args.get("oracle-tol").is_some() {
        if !tol.is_finite() || tol < 0.0 {
            return Err(format!(
                "option `--oracle-tol` expects a non-negative number, got `{tol}`"
            ));
        }
        runner = runner.with_oracle_tolerance(tol);
    }
    Ok(runner)
}

fn sweep(args: &Args) -> Result<(), String> {
    let figure = args.get_or("figure", "fig7a");
    let trials = args.get_usize("trials", 5)?;
    let runner = runner_from(args)?;
    let (table, csv, stats) = match figure {
        "fig6" => {
            let instances = args.get_usize("instances", 15)?;
            let (rows, stats) = figures::fig6_with(instances, trials, &runner);
            let table = rows
                .iter()
                .map(|r| {
                    format!(
                        "U={:<3} memory: SDEM {:6.2}% MBKPS {:6.2}%   system: SDEM {:6.2}% MBKPS {:6.2}%\n",
                        r.u,
                        r.sdem_memory_saving * 100.0,
                        r.mbkps_memory_saving * 100.0,
                        r.sdem_system_saving * 100.0,
                        r.mbkps_system_saving * 100.0,
                    )
                })
                .collect::<String>();
            (table, figures::fig6_to_csv(&rows), stats)
        }
        "fig7a" => {
            let tasks = args.get_usize("tasks", 40)?;
            let (cells, stats) = figures::fig7a_with(tasks, trials, &runner);
            (
                figures::format_fig7(&cells, "alpha_m[W]"),
                figures::fig7_to_csv(&cells, "alpha_m_w"),
                stats,
            )
        }
        "fig7b" => {
            let tasks = args.get_usize("tasks", 40)?;
            let (cells, stats) = figures::fig7b_with(tasks, trials, &runner);
            (
                figures::format_fig7(&cells, "xi_m[ms]"),
                figures::fig7_to_csv(&cells, "xi_m_ms"),
                stats,
            )
        }
        other => return Err(format!("unknown figure `{other}`")),
    };
    print!("{table}");
    // Stats carry wall-clock throughput and the thread count; keep them off
    // stdout so captured tables stay identical for any --threads value.
    eprintln!("sweep: {stats}");
    if let Some(path) = args.get("csv") {
        fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote CSV to {path}");
    }
    Ok(())
}

fn experiment(args: &Args) -> Result<(), String> {
    let kind = args.get_or("kind", "synthetic");
    let cores = args.get_usize("cores", 8)?;
    let trials = args.get_usize("trials", 10)?;
    let seed = args.get_u64("seed", 0x5DE0)?;
    let platform = platform_from(args)?;
    let runner = runner_from(args)?;

    let tasks_n = args.get_usize("tasks", 40)?;
    let x_ms = args.get_f64("x-ms", 400.0)?;
    let u = args.get_f64("u", 4.0)?;
    let instances = args.get_usize("instances", 20)?;
    let make_tasks = |s: u64| match kind {
        "synthetic" => Ok(synthetic::sporadic(
            &SyntheticConfig::paper(tasks_n, Time::from_millis(x_ms)),
            s,
        )),
        "dspstone" => Ok(stream(
            &[Benchmark::fft_1024(), Benchmark::matrix_24()],
            u,
            instances,
            s,
        )),
        other => Err(format!("unknown workload kind `{other}`")),
    };
    make_tasks(0)?; // Surface an unknown kind before spawning workers.

    let outcome = runner.run(&[()], trials, seed, |_, ctx| {
        run_trial_resampling(
            |s| make_tasks(s).expect("kind validated above"),
            &platform,
            cores,
            ctx,
        )
    });
    let results = &outcome.per_point[0];
    if results.is_empty() {
        return Err("no feasible seeds for this configuration".into());
    }
    println!(
        "experiment: kind={kind} trials={} cores={cores} (seed {seed:#x})",
        results.len()
    );
    println!(
        "  SDEM-ON vs MBKP   system saving: {:6.2}%   memory saving: {:6.2}%",
        mean(results, |r| r.sdem_system_saving_vs_mbkp()) * 100.0,
        mean(results, |r| r.sdem_memory_saving_vs_mbkp()) * 100.0,
    );
    println!(
        "  MBKPS   vs MBKP   system saving: {:6.2}%   memory saving: {:6.2}%",
        mean(results, |r| r.mbkps_system_saving_vs_mbkp()) * 100.0,
        mean(results, |r| r.mbkps_memory_saving_vs_mbkp()) * 100.0,
    );
    println!(
        "  SDEM-ON vs MBKPS  improvement:   {:6.2}%",
        mean(results, |r| r.sdem_improvement_over_mbkps()) * 100.0,
    );
    eprintln!("sweep: {}", outcome.stats);
    Ok(())
}

fn trace(args: &Args) -> Result<(), String> {
    let tasks = load_tasks(args)?;
    let platform = platform_from(args)?;
    let scheme = args.get_or("scheme", "sdem-on");
    let cores = args.get_usize("cores", 8)?;
    let samples = args.get_usize("samples", 500)?;
    let sched = build_schedule(scheme, &tasks, &platform, cores)?;
    sched.validate(&tasks).map_err(|e| e.to_string())?;
    let csv = trace_to_csv(&power_trace(
        &sched,
        &platform,
        sim_options(scheme),
        samples,
    ));
    match args.get("out") {
        Some(path) => {
            fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {samples}-sample power trace to {path}");
        }
        None => print!("{csv}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&sv(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
        assert!(run(&sv(&["frobnicate"])).is_err());
    }

    #[test]
    fn generate_schedule_compare_round_trip() {
        let dir = std::env::temp_dir().join("sdem-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tasks.txt");
        let path = file.to_str().unwrap().to_string();

        run(&sv(&[
            "generate",
            "--kind",
            "synthetic",
            "--tasks",
            "12",
            "--seed",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&sv(&[
            "schedule", "--input", &path, "--scheme", "sdem-on", "--quiet",
        ]))
        .unwrap();
        run(&sv(&[
            "schedule", "--input", &path, "--scheme", "mbkp", "--quiet",
        ]))
        .unwrap();
        run(&sv(&["compare", "--input", &path])).unwrap();
        let csv = dir.join("trace.csv");
        let csv_path = csv.to_str().unwrap().to_string();
        run(&sv(&[
            "trace",
            "--input",
            &path,
            "--samples",
            "50",
            "--out",
            &csv_path,
        ]))
        .unwrap();
        let text = fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("time_s,"));
        assert_eq!(text.lines().count(), 51);
        fs::remove_file(&csv).ok();
        fs::remove_file(&file).ok();
    }

    #[test]
    fn common_release_schemes_require_common_release_input() {
        let dir = std::env::temp_dir().join("sdem-cli-test2");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("cr.txt");
        let path = file.to_str().unwrap().to_string();
        run(&sv(&[
            "generate",
            "--kind",
            "common-release",
            "--tasks",
            "6",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&sv(&[
            "schedule",
            "--input",
            &path,
            "--scheme",
            "cr-alpha-nonzero",
            "--quiet",
        ]))
        .unwrap();
        run(&sv(&[
            "schedule",
            "--input",
            &path,
            "--scheme",
            "cr-overhead",
            "--quiet",
            "--gantt",
        ]))
        .unwrap();
        fs::remove_file(&file).ok();
    }

    #[test]
    fn experiment_command_and_error_paths() {
        run(&sv(&[
            "experiment",
            "--trials",
            "2",
            "--tasks",
            "12",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(run(&sv(&["sweep", "--figure", "fig9"])).is_err());
        assert!(run(&sv(&["experiment", "--kind", "quantum"])).is_err());
    }

    #[test]
    fn oracle_flag_and_tolerance_are_wired() {
        run(&sv(&[
            "experiment",
            "--trials",
            "2",
            "--tasks",
            "12",
            "--oracle",
        ]))
        .unwrap();
        // A bare --oracle-tol also enables the oracle.
        run(&sv(&[
            "experiment",
            "--trials",
            "1",
            "--tasks",
            "12",
            "--oracle-tol",
            "1e-5",
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "experiment",
            "--trials",
            "1",
            "--oracle-tol",
            "-1.0",
        ]))
        .is_err());
    }

    #[test]
    fn unknown_scheme_and_kind_are_reported() {
        assert!(run(&sv(&["generate", "--kind", "quantum"])).is_err());
        let dir = std::env::temp_dir().join("sdem-cli-test3");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.txt");
        let path = file.to_str().unwrap().to_string();
        run(&sv(&["generate", "--tasks", "4", "--out", &path])).unwrap();
        assert!(run(&sv(&["schedule", "--input", &path, "--scheme", "magic"])).is_err());
        fs::remove_file(&file).ok();
    }
}
