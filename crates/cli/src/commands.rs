//! Subcommand implementations.

use std::fs;

use sdem_baselines::mbkp::{self, Assignment};
use sdem_baselines::{avr, css, oa, yds};
use sdem_bench::experiment::{
    mean, run_trial_checked, run_trial_resampling, FaultInjection, OracleCheck,
};
use sdem_bench::figures::{self, RobustOptions};
use sdem_core::dag::DagAssignment;
use sdem_core::{solve, OracleOptions};
use sdem_exec::{CheckpointJournal, SweepRunner};
use sdem_power::Platform;
use sdem_serve::{api, ChaosSpec, ReplayConfig, ServiceConfig, SupervisorConfig};
use sdem_sim::{
    power_trace, render_gantt, schedule_stats, simulate_with_options, trace_to_csv, SimOptions,
    SleepPolicy,
};
use sdem_types::{ErrorKind, Schedule, TaskSet, Time, Workspace};
use sdem_workload::dag::{self as dagmod, DagConfig};
use sdem_workload::dspstone::{stream, Benchmark};
use sdem_workload::synthetic::{self, SyntheticConfig};
use sdem_workload::textfmt as io;
use sdem_workload::trace::TraceSpec;

use crate::args::Args;
use crate::error::CliError;

const HELP: &str = "\
sdem-cli — SDEM energy-minimization toolkit

USAGE:
  sdem-cli generate [--kind synthetic|dspstone|common-release|agreeable]
                    [--tasks N] [--x-ms X] [--u U] [--instances N]
                    [--seed S] [--out FILE]
  sdem-cli schedule --input FILE [--scheme NAME] [--alpha-m W] [--xi-m MS]
                    [--cores N] [--gantt] [--quiet] [--fallback]
  sdem-cli compare  --input FILE [--alpha-m W] [--xi-m MS] [--cores N]
  sdem-cli trace    --input FILE [--scheme NAME] [--samples N] [--out FILE]
                    power-over-time CSV (time_s,cores_w,memory_w,total_w)
  sdem-cli sweep    [--figure fig6|fig7a|fig7b] [--trials N] [--tasks N]
                    [--instances N] [--threads N] [--csv FILE]
                    [--metrics FILE] [--trace FILE]
                    [--oracle] [--oracle-tol REL] [--oracle-keep-going]
                    [--quarantine FILE] [--inject panics=N,nans=N]
                    [--checkpoint FILE | --resume FILE] [--halt-after N]
                    parallel figure sweep; prints trials/sec statistics
  sdem-cli stats    --input FILE [--check]
                    summarize a --metrics JSON or --trace JSONL file
  sdem-cli repro    --seed S [--kind synthetic|dspstone|fig6] [--tasks N]
                    [--x-ms X] [--u U] [--instances N] [--cores N]
                    [--alpha-m W] [--xi-m MS] [--oracle] [--oracle-tol REL]
                    replay one quarantined trial from its exact seed
  sdem-cli serve    [--workers N] [--queue N] [--cache N] [--metrics FILE]
                    persistent scheduling daemon: JSONL requests on stdin,
                    JSONL responses on stdout, drains cleanly at EOF
  sdem-cli replay   [--trace SPEC] --events N [--workers N] [--queue N]
                    [--cache N] [--chaos SPEC] [--journal FILE | --resume FILE]
                    [--halt-after N] [--max-restarts N] [--backoff-ms N]
                    [--metrics FILE]
                    stream a generated arrival trace through the daemon,
                    crash-recoverable via the response journal
  sdem-cli experiment [--kind synthetic|dspstone] [--tasks N] [--x-ms X]
                    [--u U] [--instances N] [--cores N] [--trials N]
                    [--threads N] [--seed S] [--alpha-m W] [--xi-m MS]
                    [--oracle] [--oracle-tol REL]
                    one grid point, parallel replicates, summary savings
  sdem-cli dag generate [--count N] [--nodes N] [--frame-ms MS] [--seed S]
                    [--out FILE]
                    seeded random DAG suite as YAML (stdout without --out)
  sdem-cli dag solve --input FILE [--cores N] [--alpha-m W] [--xi-m MS]
                    [--oracle] [--oracle-tol REL]
                    federated allocation + per-core SDEM solve of a YAML
                    DAG suite: cluster sizes, per-core energy, aggregate
  sdem-cli dag sweep [--suites N] [--dags N] [--nodes N] [--threads N]
                    [--csv FILE]
                    energy vs core budget over seeded DAG suites, every
                    cell oracle-verified; identical at any --threads
  sdem-cli help

Sweeps and experiments fan trials across worker threads; results are
identical for any --threads value (deterministic per-trial seeding).
--oracle cross-checks every trial against the simulator: the SDEM-ON
schedule's analytic energy must match the interval meter, and the meter
must match the event-driven engine, within --oracle-tol (default 1e-6
relative); divergence aborts the sweep. Example:
  sdem-cli sweep --figure fig7a --trials 2 --tasks 12 --oracle

Robust sweeps: any of --quarantine/--inject/--checkpoint/--resume/
--halt-after/--oracle-keep-going switches the sweep into fault-isolated
mode — a panicking, NaN-producing or (with --oracle-keep-going)
oracle-diverging trial is quarantined instead of aborting the sweep.
--quarantine FILE writes one JSON record per quarantined trial (sorted by
trial index, byte-identical for any --threads value), each carrying the
exact seed and a `repro` config string. --checkpoint FILE journals every
finished trial; --resume FILE continues a halted sweep bit-identically to
an uninterrupted run. --halt-after N stops after N trials (for testing
resume). --inject panics=N,nans=N fabricates deterministic faults for
smoke tests. Replay a record:
  sdem-cli repro --seed 0x1f2e3d4c... --kind synthetic --tasks 40

Observability: sweep --metrics FILE exports the run's counters, energy
gauges and log2-bucket latency histograms as JSON; --trace FILE exports
a JSONL span/instant trace with monotonic timestamps. Both are off by
default, cost nothing when off, and never touch stdout — the sweep table
stays byte-identical with or without them, at any --threads value.
Inspect either file with `sdem-cli stats --input FILE`; --check
additionally validates the file's internal consistency (version, bucket
sums, percentile monotonicity, gauge bit patterns).

schedule --fallback routes through the degraded-mode chain: when the
chosen scheme rejects the instance, the always-feasible race-to-idle
baseline (all tasks at s_max) is used instead and reported as degraded.

serve answers solve requests as a persistent service: one JSON object per
stdin line (`{\"v\":1,\"id\":7,\"scheme\":\"auto\",\"tasks\":[[id,release_ms,
deadline_ms,work_cycles],...]}`), one response per stdout line, emitted in
request order and byte-identical for any --workers count. A full --queue
sheds with an `overloaded` error instead of blocking; a request whose
`deadline_ms` elapses before a worker picks it up is answered
`deadline-expired`. Repeated (and permuted) task sets hit a canonicalized
solve cache of --cache entries. --metrics FILE exports the run's request
counters and latency histograms at shutdown, same format as sweep's.
Errors carry stable `kind` codes; the CLI maps the same codes onto its
exit codes (usage 2, bad-request 3, scheme-error 4, ...).

replay streams a seeded arrival trace (millions of events, generated —
never materialized) through the same service. --trace takes a
`seed=0x…,sets=N,tasks=N,poisson=P,shapes=N` spec: hyperperiod-expanded
periodic request sets merged with an open-loop Poisson mix. Responses go
to stdout, byte-identical for any --workers count. --journal FILE appends
every response (write-ahead, flushed per line) so a killed replay
restarted with --resume FILE skips completed seqs — counted as
serve/recovered_seqs — and emits output byte-identical to an
uninterrupted run. --chaos `seed=0x…,panics=N,poison=N,queue-full=N,
latency=N` injects worker panics (contained by the supervisor:
--max-restarts budget, exponential backoff from --backoff-ms, then
fail-fast), poisoned request fields, forced degradations through the
race-to-idle tier (`degraded: true` responses) and artificial latency;
observed serve/{worker_restarts,degraded_responses} counters must match
the injected plan exactly or the replay exits with an error. Example:
  sdem-cli replay --trace seed=0x7ace,sets=4,tasks=6,poisson=0.25,shapes=32 \\
    --events 1000000 --workers 4 --journal replay.journal

SCHEMES:
  auto                 route from the task-set shape (common release →
                       §4/§7, agreeable → §5 DP, general → SDEM-ON)
  sdem-on (default)    paper §6 online heuristic, bounded to --cores
  cr-alpha-zero        paper §4.1 (common release, α = 0 model)
  cr-alpha-nonzero     paper §4.2 (common release, core sleeping)
  cr-overhead          paper §7 (transition overheads)
  agreeable            paper §5 DP (agreeable deadlines)
  agreeable-strict     §5 DP with overlap-free block repair
  bounded-auto         paper §3 bounded cores, strongest tier the size
                       admits (exact → branch-and-bound → LPT + refine)
  bounded-exact        paper §3 exact partition enumeration (small n)
  bounded-bnb          paper §3 branch-and-bound (exact, larger n)
  bounded-refined      paper §3 LPT + local-search refinement (any n)
  bounded-lpt          paper §3 plain LPT heuristic
  mbkp | mbkps         baseline: round-robin + per-core Optimal Available
  yds | oa | avr | css single-core substrate policies (css = YDS clamped
                       to the joint critical speed; system-wide baseline)

The platform is the paper's: 8 × Cortex-A57 + 50 nm DRAM; --alpha-m and
--xi-m override the memory model (defaults 4 W, 40 ms).
";

/// Dispatches a full command line.
///
/// # Errors
///
/// A typed [`CliError`] — the kind carries the taxonomy code that becomes
/// the process exit status, the message stays human-readable.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        println!("{HELP}");
        return Ok(());
    };
    // `dag` takes a positional action (`generate|solve|sweep`) before its
    // options, so it owns its own parse instead of the flat one below.
    if command == "dag" {
        return dag(&argv[1..]);
    }
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => generate(&args),
        "schedule" => schedule(&args),
        "compare" => compare(&args),
        "trace" => trace(&args),
        "sweep" => sweep(&args),
        "stats" => stats(&args),
        "experiment" => experiment(&args),
        "repro" => repro(&args),
        "serve" => serve(&args),
        "replay" => replay(&args),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(CliError::new(
            ErrorKind::Usage,
            format!("unknown command `{other}`"),
        )),
    }
}

/// Builds the platform from `--alpha-m`/`--xi-m` through the serve API's
/// boundary validator, so the CLI and the daemon accept exactly the same
/// parameter space (finite, non-negative, validated platform).
fn platform_from(args: &Args) -> Result<Platform, CliError> {
    let alpha_m = args.get_f64("alpha-m", api::DEFAULT_ALPHA_M_W)?;
    let xi_m = args.get_f64("xi-m", api::DEFAULT_XI_M_MS)?;
    api::platform_for(alpha_m, xi_m).map_err(Into::into)
}

fn load_tasks(args: &Args) -> Result<TaskSet, String> {
    let path = args
        .get("input")
        .ok_or_else(|| "`--input FILE` is required".to_string())?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    io::from_text(&text)
}

fn generate(args: &Args) -> Result<(), CliError> {
    let kind = args.get_or("kind", "synthetic");
    let seed = args.get_u64("seed", 1)?;
    let tasks = match kind {
        "synthetic" => {
            let cfg = SyntheticConfig::paper(
                args.get_usize("tasks", 40)?,
                Time::from_millis(args.get_f64("x-ms", 400.0)?),
            );
            synthetic::sporadic(&cfg, seed)
        }
        "common-release" => {
            let cfg = SyntheticConfig::paper(args.get_usize("tasks", 40)?, Time::ZERO);
            synthetic::common_release(&cfg, seed)
        }
        "agreeable" => {
            let cfg = SyntheticConfig::paper(
                args.get_usize("tasks", 40)?,
                Time::from_millis(args.get_f64("x-ms", 400.0)?),
            );
            synthetic::agreeable(&cfg, seed)
        }
        "dspstone" => stream(
            &[Benchmark::fft_1024(), Benchmark::matrix_24()],
            args.get_f64("u", 4.0)?,
            args.get_usize("instances", 20)?,
            seed,
        ),
        other => return Err(format!("unknown workload kind `{other}`").into()),
    };
    let text = io::to_text(&tasks);
    match args.get("out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} tasks to {path}", tasks.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Builds a schedule for any scheme name. SDEM schemes route through the
/// serve API's name mapping and the `solve` entry point; the baseline
/// policies keep their direct entry points (they are batch-only and never
/// cross the wire protocol).
fn build_schedule(
    scheme: &str,
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
) -> Result<Schedule, String> {
    if let Ok(s) = api::scheme_from_name(scheme, cores) {
        return solve(tasks, platform, s)
            .map(sdem_core::Solution::into_schedule)
            .map_err(|e| e.to_string());
    }
    match scheme {
        "mbkp" | "mbkps" => mbkp::schedule_online(tasks, platform, cores, Assignment::RoundRobin)
            .map_err(|e| e.to_string()),
        "yds" => yds::schedule_single_core(tasks, platform).map_err(|e| e.to_string()),
        "oa" => oa::schedule_single_core_online(tasks, platform).map_err(|e| e.to_string()),
        "avr" => avr::schedule_single_core(tasks, platform).map_err(|e| e.to_string()),
        "css" => css::schedule_single_core_css(tasks, platform).map_err(|e| e.to_string()),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

fn sim_options(scheme: &str) -> SimOptions {
    let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
    match scheme {
        "mbkp" | "yds" | "oa" | "avr" => SimOptions {
            memory_policy: SleepPolicy::NeverSleep,
            ..profit
        },
        _ => profit,
    }
}

fn schedule(args: &Args) -> Result<(), CliError> {
    let tasks = load_tasks(args)?;
    let platform = platform_from(args)?;
    let scheme = args.get_or("scheme", "sdem-on");
    let cores = args.get_usize("cores", 8)?;
    // SDEM schemes go through the same request/execute path the daemon
    // uses (canonicalize → solve → summarize), so batch and serve answers
    // come from one code path; the baselines stay batch-only.
    let (sched, degraded) = match api::scheme_from_name(scheme, cores) {
        Ok(s) => {
            let req = api::SolveRequest {
                id: 0,
                scheme: s,
                scheme_name: scheme.to_string(),
                cores,
                alpha_m_w: args.get_f64("alpha-m", api::DEFAULT_ALPHA_M_W)?,
                xi_m_ms: args.get_f64("xi-m", api::DEFAULT_XI_M_MS)?,
                deadline_ms: None,
                fallback: args.has_flag("fallback"),
                tasks: tasks.clone(),
            };
            let executed = api::execute_in(&req, &platform, &mut Workspace::new())?;
            let degraded = executed.response.degraded;
            (executed.solution.into_schedule(), degraded)
        }
        Err(_) if args.has_flag("fallback") => {
            return Err(CliError::new(
                ErrorKind::BadRequest,
                format!(
                    "--fallback supports the SDEM schemes only (auto, sdem-on, \
                     cr-*, agreeable*), not `{scheme}`"
                ),
            ))
        }
        Err(_) => (build_schedule(scheme, &tasks, &platform, cores)?, false),
    };
    sched.validate(&tasks).map_err(|e| e.to_string())?;
    if degraded {
        eprintln!(
            "degraded: scheme `{scheme}` rejected the instance; race-to-idle \
             fallback (all tasks at s_max) applied"
        );
    }
    let report = simulate_with_options(&sched, &tasks, &platform, sim_options(scheme))
        .map_err(|e| e.to_string())?;

    if !args.has_flag("quiet") {
        println!(
            "scheme: {scheme}  tasks: {}  cores used: {}",
            tasks.len(),
            sched.cores_used()
        );
        for p in sched.placements() {
            match (p.start(), p.end()) {
                (Some(s), Some(e)) => println!(
                    "  {} on {}: [{:9.3}, {:9.3}] ms, {} segment(s), avg {:7.1} MHz",
                    p.task(),
                    p.core(),
                    s.as_millis(),
                    e.as_millis(),
                    p.segments().len(),
                    (p.executed_work() / p.busy_time()).as_mhz(),
                ),
                _ => println!("  {} on {}: (zero work)", p.task(), p.core()),
            }
        }
    }
    println!("energy: {report}");
    if let Some(stats) = schedule_stats(&sched) {
        println!(
            "stats: span [{:.3}, {:.3}] ms, {} cores, core util {:.1}%, memory util {:.1}%, \
             mean speed {:.1} MHz, peak {:.1} MHz",
            stats.start.as_millis(),
            stats.end.as_millis(),
            stats.cores_used,
            stats.core_utilization * 100.0,
            stats.memory_utilization * 100.0,
            stats.mean_speed.as_mhz(),
            stats.peak_speed.as_mhz(),
        );
    }
    if args.has_flag("gantt") {
        println!("{}", render_gantt(&sched, 96));
    }
    Ok(())
}

fn compare(args: &Args) -> Result<(), CliError> {
    let tasks = load_tasks(args)?;
    let platform = platform_from(args)?;
    let cores = args.get_usize("cores", 8)?;

    println!(
        "{:16} {:>12} {:>12} {:>12} {:>8}",
        "scheme", "total [J]", "memory [J]", "cores [J]", "sleeps"
    );
    let mut reference: Option<f64> = None;
    for scheme in ["mbkp", "mbkps", "sdem-on", "bounded-auto"] {
        match build_schedule(scheme, &tasks, &platform, cores) {
            Ok(sched) => {
                let report = simulate_with_options(&sched, &tasks, &platform, sim_options(scheme))
                    .map_err(|e| e.to_string())?;
                let total = report.total().value();
                let vs = match reference {
                    None => {
                        reference = Some(total);
                        String::new()
                    }
                    Some(r) => format!("  ({:+.1}% vs MBKP)", (total / r - 1.0) * 100.0),
                };
                println!(
                    "{:16} {:>12.4} {:>12.4} {:>12.4} {:>8}{vs}",
                    scheme,
                    total,
                    report.memory_total().value(),
                    report.core_total().value(),
                    report.memory_sleeps,
                );
            }
            Err(e) => println!("{scheme:16} infeasible: {e}"),
        }
    }
    Ok(())
}

fn dag(rest: &[String]) -> Result<(), CliError> {
    let Some(action) = rest.first() else {
        return Err(CliError::new(
            ErrorKind::Usage,
            "dag requires an action: `dag generate|solve|sweep [options]`",
        ));
    };
    let args = Args::parse(&rest[1..])?;
    match action.as_str() {
        "generate" => dag_generate(&args),
        "solve" => dag_solve(&args),
        "sweep" => dag_sweep(&args),
        other => Err(CliError::new(
            ErrorKind::Usage,
            format!("unknown dag action `{other}` (expected generate, solve or sweep)"),
        )),
    }
}

fn dag_generate(args: &Args) -> Result<(), CliError> {
    let count = args.get_usize("count", 4)?;
    let nodes = args.get_usize("nodes", 9)?;
    let frame = Time::from_millis(args.get_f64("frame-ms", 120.0)?);
    let seed = args.get_u64("seed", 1)?;
    if count == 0 || nodes == 0 {
        return Err(CliError::new(
            ErrorKind::Usage,
            "--count and --nodes must be positive",
        ));
    }
    let dags = dagmod::suite(&DagConfig::paper(nodes, frame), count, seed);
    let yaml = dagmod::dags_to_yaml(&dags);
    if let Some(path) = args.get("out") {
        fs::write(path, &yaml).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!(
            "wrote {count} DAGs ({nodes} nodes each, {:.0} ms frame, seed {seed}) to {path}",
            frame.as_millis()
        );
    } else {
        print!("{yaml}");
    }
    Ok(())
}

fn dag_solve(args: &Args) -> Result<(), CliError> {
    let path = args
        .get("input")
        .ok_or_else(|| "`--input FILE` is required".to_string())?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let dags =
        dagmod::dags_from_yaml(&text).map_err(|e| CliError::new(e.error_kind(), e.to_string()))?;
    let platform = platform_from(args)?;
    let cores = args.get_usize("cores", 8)?;
    let report = sdem_core::dag::solve_dags(&dags, &platform, cores)
        .map_err(|e| CliError::new(e.kind(), format!("federated solve failed: {e}")))?;

    for (dag, assignment) in dags.iter().zip(&report.assignments) {
        match assignment {
            DagAssignment::Dedicated { first_core, cores } => println!(
                "dag {:24} heavy: dedicated cluster of {cores} core(s) starting at core {first_core}",
                dag.name()
            ),
            DagAssignment::Shared { core } => {
                println!("dag {:24} light: shared core {core}", dag.name());
            }
            _ => {}
        }
    }
    println!();
    println!(
        "{:>5} {:>6} {:>12} {:>10}",
        "core", "tasks", "energy_j", "sleep_ms"
    );
    for c in &report.per_core {
        println!(
            "{:>5} {:>6} {:>12.6} {:>10.3}",
            c.core.0,
            c.tasks,
            c.energy.value(),
            c.memory_sleep.as_millis()
        );
    }
    println!();
    println!(
        "aggregate: {:.6} J, memory sleep {:.3} ms, {} of {cores} core(s) busy, {} dedicated cluster(s)",
        report.solution.predicted_energy().value(),
        report.solution.memory_sleep().as_millis(),
        report.cores_used,
        report.clusters
    );
    if args.has_flag("oracle") || args.get("oracle-tol").is_some() {
        let tol = args.get_f64("oracle-tol", sdem_exec::DEFAULT_ORACLE_TOLERANCE)?;
        let options = OracleOptions::default().with_tolerance(tol);
        let metered = report
            .verify_against_meter(&platform, options)
            .map_err(|e| CliError::new(ErrorKind::OracleDivergence, e.to_string()))?;
        println!(
            "oracle: meter agrees at {:.6} J (rel tol {tol})",
            metered.value()
        );
    }
    Ok(())
}

fn dag_sweep(args: &Args) -> Result<(), CliError> {
    let mut config = figures::DagSweepConfig::paper();
    config.suites = args.get_usize("suites", config.suites)?;
    config.dags_per_suite = args.get_usize("dags", config.dags_per_suite)?;
    config.nodes = args.get_usize("nodes", config.nodes)?;
    if config.suites == 0 || config.dags_per_suite == 0 || config.nodes == 0 {
        return Err(CliError::new(
            ErrorKind::Usage,
            "--suites, --dags and --nodes must be positive",
        ));
    }
    let runner = runner_from(args)?;
    let (rows, stats) = figures::dag_energy_with(&config, &runner);
    eprintln!("sweep: {stats}");
    println!(
        "{:>5} {:>5} {:>9} {:>12} {:>10} {:>8} {:>10}",
        "suite", "cores", "feasible", "energy_j", "sleep_ms", "clusters", "cores_used"
    );
    for r in &rows {
        println!(
            "{:>5} {:>5} {:>9} {:>12.6} {:>10.3} {:>8} {:>10}",
            r.suite, r.cores, r.feasible, r.energy_j, r.memory_sleep_ms, r.clusters, r.cores_used
        );
    }
    if let Some(path) = args.get("csv") {
        fs::write(path, figures::dag_energy_to_csv(&rows))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote CSV to {path}");
    }
    Ok(())
}

fn runner_from(args: &Args) -> Result<SweepRunner, String> {
    let mut runner = SweepRunner::new().with_threads(args.get_usize("threads", 0)?);
    let tol = args.get_f64("oracle-tol", sdem_exec::DEFAULT_ORACLE_TOLERANCE)?;
    if args.has_flag("oracle") || args.get("oracle-tol").is_some() {
        if !tol.is_finite() || tol < 0.0 {
            return Err(format!(
                "option `--oracle-tol` expects a non-negative number, got `{tol}`"
            ));
        }
        runner = runner.with_oracle_tolerance(tol);
    }
    Ok(runner)
}

fn fig6_table(rows: &[figures::Fig6Row]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "U={:<3} memory: SDEM {:6.2}% MBKPS {:6.2}%   system: SDEM {:6.2}% MBKPS {:6.2}%\n",
                r.u,
                r.sdem_memory_saving * 100.0,
                r.mbkps_memory_saving * 100.0,
                r.sdem_system_saving * 100.0,
                r.mbkps_system_saving * 100.0,
            )
        })
        .collect()
}

/// Entry point for `sweep`: arms the metrics registry and/or trace sink
/// when `--metrics`/`--trace` are given, runs the sweep, then exports the
/// files. All observability output goes to side files and stderr — the
/// sweep's stdout is byte-identical with or without these flags.
fn sweep(args: &Args) -> Result<(), CliError> {
    let metrics = args.get("metrics").map(str::to_string);
    let trace_out = args.get("trace").map(str::to_string);
    if metrics.is_some() {
        // Fresh registry so the export reflects only this run, even when
        // several sweeps share one process (e.g. the test harness).
        sdem_obs::registry::reset();
        sdem_obs::registry::set_enabled(true);
    }
    if trace_out.is_some() {
        sdem_obs::trace::set_enabled(true);
    }
    let outcome = sweep_dispatch(args);
    // Quiesce before exporting so the snapshot/drain see a stable world,
    // and so a failed sweep never leaves global instrumentation armed.
    sdem_obs::registry::set_enabled(false);
    sdem_obs::trace::set_enabled(false);
    outcome?;
    if let Some(path) = metrics {
        let json = sdem_obs::registry::snapshot().to_json();
        fs::write(&path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("metrics: wrote {path}");
    }
    if let Some(path) = trace_out {
        let jsonl = sdem_obs::trace::drain_jsonl();
        fs::write(&path, jsonl).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("trace: wrote {path}");
    }
    Ok(())
}

fn sweep_dispatch(args: &Args) -> Result<(), CliError> {
    let robust = args.get("quarantine").is_some()
        || args.get("inject").is_some()
        || args.get("checkpoint").is_some()
        || args.get("resume").is_some()
        || args.get("halt-after").is_some()
        || args.has_flag("oracle-keep-going");
    if robust {
        return sweep_robust(args);
    }
    let figure = args.get_or("figure", "fig7a");
    let trials = args.get_usize("trials", 5)?;
    let runner = runner_from(args)?;
    let (table, csv, stats) = match figure {
        "fig6" => {
            let instances = args.get_usize("instances", 15)?;
            let (rows, stats) = figures::fig6_with(instances, trials, &runner);
            (fig6_table(&rows), figures::fig6_to_csv(&rows), stats)
        }
        "fig7a" => {
            let tasks = args.get_usize("tasks", 40)?;
            let (cells, stats) = figures::fig7a_with(tasks, trials, &runner);
            (
                figures::format_fig7(&cells, "alpha_m[W]"),
                figures::fig7_to_csv(&cells, "alpha_m_w"),
                stats,
            )
        }
        "fig7b" => {
            let tasks = args.get_usize("tasks", 40)?;
            let (cells, stats) = figures::fig7b_with(tasks, trials, &runner);
            (
                figures::format_fig7(&cells, "xi_m[ms]"),
                figures::fig7_to_csv(&cells, "xi_m_ms"),
                stats,
            )
        }
        other => return Err(format!("unknown figure `{other}`").into()),
    };
    print!("{table}");
    // Stats carry wall-clock throughput and the thread count; keep them off
    // stdout so captured tables stay identical for any --threads value.
    eprintln!("sweep: {stats}");
    if let Some(path) = args.get("csv") {
        fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote CSV to {path}");
    }
    Ok(())
}

/// The fault-isolated sweep mode: quarantines failed trials, optionally
/// journals every finished trial for checkpoint/resume, and keeps stdout
/// byte-identical for any thread count (including the quarantine file,
/// which is sorted by trial index).
fn sweep_robust(args: &Args) -> Result<(), CliError> {
    let figure = args.get_or("figure", "fig7a");
    let trials = args.get_usize("trials", 5)?;
    let mut runner = runner_from(args)?;
    let halt_after = args.get_usize("halt-after", 0)?;
    if halt_after > 0 {
        runner = runner.with_trial_budget(halt_after);
    }
    let options = RobustOptions {
        keep_going_oracle: args.has_flag("oracle-keep-going"),
        inject: match args.get("inject") {
            Some(spec) => FaultInjection::parse(spec)?,
            None => FaultInjection::default(),
        },
    };
    let mut journal = match (args.get("checkpoint"), args.get("resume")) {
        (Some(_), Some(_)) => {
            return Err(
                "--checkpoint and --resume are mutually exclusive (--resume reopens \
                 an existing checkpoint and keeps appending to it)"
                    .into(),
            )
        }
        (Some(path), None) => Some(CheckpointJournal::new(path)),
        (None, Some(path)) => Some(CheckpointJournal::resume(path).map_err(|e| e.to_string())?),
        (None, None) => None,
    };
    if let Some(j) = &journal {
        if j.preloaded() > 0 {
            eprintln!(
                "resume: {} trial(s) preloaded from checkpoint",
                j.preloaded()
            );
        }
    }

    let err = |e: sdem_exec::SweepError| e.to_string();
    let (rendered, quarantine, stats, completed) = match figure {
        "fig6" => {
            let instances = args.get_usize("instances", 15)?;
            let f = figures::fig6_robust(instances, trials, &runner, options, journal.as_mut())
                .map_err(err)?;
            let rendered = f
                .rows
                .as_deref()
                .map(|rows| (fig6_table(rows), figures::fig6_to_csv(rows)));
            (rendered, f.quarantine, f.stats, f.completed)
        }
        "fig7a" => {
            let tasks = args.get_usize("tasks", 40)?;
            let f = figures::fig7a_robust(tasks, trials, &runner, options, journal.as_mut())
                .map_err(err)?;
            let rendered = f.rows.as_deref().map(|cells| {
                (
                    figures::format_fig7(cells, "alpha_m[W]"),
                    figures::fig7_to_csv(cells, "alpha_m_w"),
                )
            });
            (rendered, f.quarantine, f.stats, f.completed)
        }
        "fig7b" => {
            let tasks = args.get_usize("tasks", 40)?;
            let f = figures::fig7b_robust(tasks, trials, &runner, options, journal.as_mut())
                .map_err(err)?;
            let rendered = f.rows.as_deref().map(|cells| {
                (
                    figures::format_fig7(cells, "xi_m[ms]"),
                    figures::fig7_to_csv(cells, "xi_m_ms"),
                )
            });
            (rendered, f.quarantine, f.stats, f.completed)
        }
        other => return Err(format!("unknown figure `{other}`").into()),
    };

    match rendered {
        Some((table, csv)) => {
            print!("{table}");
            if let Some(path) = args.get("csv") {
                fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
                eprintln!("wrote CSV to {path}");
            }
        }
        None => eprintln!(
            "sweep halted after {completed}/{} trials; finish it with --resume <checkpoint>",
            stats.trials
        ),
    }
    eprintln!("sweep: {stats}");
    if let Some(path) = args.get("quarantine") {
        let mut text = String::new();
        for record in &quarantine {
            text.push_str(&record.to_json_line());
            text.push('\n');
        }
        fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("quarantine: wrote {} record(s) to {path}", quarantine.len());
    }
    if !quarantine.is_empty() {
        eprintln!(
            "quarantine: {} trial(s) failed; replay one with `sdem-cli repro --seed <seed> \
             <config flags from its record>`",
            quarantine.len()
        );
    }
    Ok(())
}

/// Summarizes an observability file written by `sweep --metrics` (JSON)
/// or `sweep --trace` (JSONL), auto-detected from the first line. Both
/// formats are validated while being read, so a corrupt file always
/// errors; `--check` additionally prints the validation verdict (for
/// CI assertions).
fn stats(args: &Args) -> Result<(), CliError> {
    use sdem_obs::json::{self, Value};

    let path = args
        .get("input")
        .ok_or_else(|| "`--input FILE` is required".to_string())?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let first = text.lines().next().unwrap_or("");

    if first.contains("\"sdem_trace\"") {
        let verdict =
            json::validate_trace(&text).map_err(|e| format!("invalid trace `{path}`: {e}"))?;
        println!(
            "trace: {} event(s), {} span(s)",
            verdict.events, verdict.spans
        );
        // Per-name tallies with total span time, sorted by name.
        let mut by_name: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for line in text.lines().skip(1).filter(|l| !l.is_empty()) {
            let event = json::parse(line).map_err(|e| e.to_string())?;
            let name = event.get("name").and_then(Value::as_str).unwrap_or("?");
            let dur = event.get("dur_ns").and_then(Value::as_u64).unwrap_or(0);
            let entry = by_name.entry(name.to_string()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += dur;
        }
        for (name, (count, dur_ns)) in &by_name {
            println!("  {name}: {count} event(s), {dur_ns} ns total");
        }
        if args.has_flag("check") {
            println!("check: OK");
        }
        return Ok(());
    }

    let doc = json::parse(&text).map_err(|e| format!("invalid JSON `{path}`: {e}"))?;
    let verdict =
        json::validate_metrics(&doc).map_err(|e| format!("invalid metrics `{path}`: {e}"))?;
    println!(
        "metrics: {} counter(s), {} gauge(s), {} histogram(s)",
        verdict.counters, verdict.gauges, verdict.histograms
    );
    let section = |key: &str| doc.get(key).and_then(Value::as_obj).unwrap_or(&[]);
    for (name, value) in section("counters") {
        if let Some(n) = value.as_u64() {
            if n != 0 {
                println!("  counter {name} = {n}");
            }
        }
    }
    for (label, g) in section("gauges") {
        if let Some(v) = g.get("value").and_then(Value::as_f64) {
            println!("  gauge {label} = {v:e}");
        }
    }
    for (label, h) in section("histograms") {
        let field = |key: &str| h.get(key).and_then(Value::as_u64).unwrap_or(0);
        println!(
            "  histogram {label}: count={} p50<={} p90<={} p99<={} max={}",
            field("count"),
            field("p50"),
            field("p90"),
            field("p99"),
            field("max"),
        );
    }
    if args.has_flag("check") {
        println!("check: OK");
    }
    Ok(())
}

/// Replays one trial from the exact seed a quarantine record carries —
/// no resampling, no injection — and reports either the per-scheme
/// energies (the fault did not reproduce, e.g. it was injected) or the
/// structured trial error as a failure.
fn repro(args: &Args) -> Result<(), CliError> {
    if args.get("seed").is_none() {
        return Err(
            "`--seed S` is required (quarantine records carry the exact trial seed as 0x…)".into(),
        );
    }
    let seed = args.get_u64("seed", 0)?;
    let kind = args.get_or("kind", "synthetic");
    let cores = args.get_usize("cores", 8)?;
    let platform = platform_from(args)?;
    let tasks = match kind {
        "synthetic" => synthetic::sporadic(
            &SyntheticConfig::paper(
                args.get_usize("tasks", 40)?,
                Time::from_millis(args.get_f64("x-ms", 400.0)?),
            ),
            seed,
        ),
        "dspstone" => stream(
            &[Benchmark::fft_1024(), Benchmark::matrix_24()],
            args.get_f64("u", 4.0)?,
            args.get_usize("instances", 20)?,
            seed,
        ),
        // The Fig. 6 sweep's eight-stream workload (quarantine configs
        // from `sweep --figure fig6` name this kind).
        "fig6" => stream(
            &[
                Benchmark::fft_1024(),
                Benchmark::matrix_24(),
                Benchmark::fft_1024(),
                Benchmark::matrix_24(),
                Benchmark::fft_1024(),
                Benchmark::matrix_24(),
                Benchmark::fft_1024(),
                Benchmark::matrix_24(),
            ],
            args.get_f64("u", 4.0)?,
            args.get_usize("instances", 15)?,
            seed,
        ),
        other => return Err(format!("unknown workload kind `{other}`").into()),
    };
    let oracle = if args.has_flag("oracle") || args.get("oracle-tol").is_some() {
        let tol = args.get_f64("oracle-tol", sdem_exec::DEFAULT_ORACLE_TOLERANCE)?;
        if !tol.is_finite() || tol < 0.0 {
            return Err(format!(
                "option `--oracle-tol` expects a non-negative number, got `{tol}`"
            )
            .into());
        }
        // Replay reports divergence as a structured error, never a panic.
        OracleCheck::Quarantine(tol)
    } else {
        OracleCheck::Off
    };

    println!(
        "repro: seed {seed:#018x} kind={kind} tasks={} cores={cores}",
        tasks.len()
    );
    match run_trial_checked(&tasks, &platform, cores, oracle) {
        Ok(r) => {
            println!(
                "  SDEM-ON {:.6} J   MBKP {:.6} J   MBKPS {:.6} J   (cores used: {})",
                r.sdem_on.total().value(),
                r.mbkp.total().value(),
                r.mbkps.total().value(),
                r.sdem_cores_used,
            );
            println!("  trial ok — the quarantined fault did not reproduce");
            Ok(())
        }
        // The exit code carries the reproduced fault's taxonomy kind, so
        // a quarantine triage script can branch without parsing stderr.
        Err(e) => Err(CliError::new(
            e.error_kind(),
            format!("reproduced {}: {e}", e.kind()),
        )),
    }
}

/// The persistent scheduling daemon: JSONL requests on stdin, JSONL
/// responses on stdout (in request order), clean drain at EOF. With
/// `--metrics FILE` the run's request counters, cache counters and
/// latency histograms are exported at shutdown.
fn serve(args: &Args) -> Result<(), CliError> {
    let cfg = ServiceConfig {
        workers: args.get_usize("workers", 4)?.max(1),
        queue_depth: args.get_usize("queue", 1024)?.max(1),
        cache_capacity: args.get_usize("cache", 4096)?,
        ..Default::default()
    };
    let metrics = args.get("metrics").map(str::to_string);
    if metrics.is_some() {
        sdem_obs::registry::reset();
        sdem_obs::registry::set_enabled(true);
    }
    let stdin = std::io::stdin();
    let outcome = sdem_serve::run_session(cfg, stdin.lock(), Box::new(std::io::stdout()));
    sdem_obs::registry::set_enabled(false);
    let stats =
        outcome.map_err(|e| CliError::new(ErrorKind::Io, format!("serve: stdin read: {e}")))?;
    if let Some(path) = metrics {
        let json = sdem_obs::registry::snapshot().to_json();
        fs::write(&path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("metrics: wrote {path}");
    }
    eprintln!(
        "serve: {} request(s) — {} admitted, {} shed, {} rejected; cache: {} hit(s), \
         {} miss(es), {} eviction(s)",
        stats.submitted,
        stats.admitted,
        stats.shed,
        stats.rejected,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
    );
    Ok(())
}

/// Online trace replay through the daemon: a seeded arrival stream is
/// generated (never materialized), solved in order, and optionally
/// journaled so a killed run restarted with `--resume` emits output
/// byte-identical to an uninterrupted one. `--chaos` injects a seeded
/// fault plan whose observed ledger must match exactly.
fn replay(args: &Args) -> Result<(), CliError> {
    let trace = match args.get("trace") {
        Some(spec) => TraceSpec::parse(spec).map_err(|e| format!("replay: --trace: {e}"))?,
        None => TraceSpec::default(),
    };
    if args.get("events").is_none() {
        return Err(CliError::new(
            ErrorKind::Usage,
            "replay: --events N is required",
        ));
    }
    let events = args.get_u64("events", 0)?;
    let chaos = match args.get("chaos") {
        Some(spec) => Some(ChaosSpec::parse(spec).map_err(|e| format!("replay: --chaos: {e}"))?),
        None => None,
    };
    if args.get("journal").is_some() && args.get("resume").is_some() {
        return Err(CliError::new(
            ErrorKind::Usage,
            "replay: --journal and --resume are mutually exclusive \
             (--resume FILE already names the journal)",
        ));
    }
    let (journal, resume) = match args.get("resume") {
        Some(path) => (Some(std::path::PathBuf::from(path)), true),
        None => (args.get("journal").map(std::path::PathBuf::from), false),
    };
    let halt_after = match args.get("halt-after") {
        Some(_) => Some(args.get_u64("halt-after", 0)?),
        None => None,
    };
    let backoff = args.get_u64("backoff-ms", 5)?;
    let cfg = ReplayConfig {
        service: ServiceConfig {
            workers: args.get_usize("workers", 4)?.max(1),
            queue_depth: args.get_usize("queue", 1024)?.max(1),
            cache_capacity: args.get_usize("cache", 4096)?,
            supervisor: SupervisorConfig {
                max_restarts: args.get_u64("max-restarts", 8)? as u32,
                backoff_base_ms: backoff,
                backoff_cap_ms: backoff.saturating_mul(40).max(backoff),
            },
            ..Default::default()
        },
        trace,
        events,
        chaos,
        journal,
        resume,
        halt_after,
    };
    let metrics = args.get("metrics").map(str::to_string);
    if metrics.is_some() {
        sdem_obs::registry::reset();
        sdem_obs::registry::set_enabled(true);
    }
    let outcome = sdem_serve::replay(&cfg, Box::new(std::io::stdout()));
    sdem_obs::registry::set_enabled(false);
    let report = outcome.map_err(CliError::from)?;
    if let Some(path) = metrics {
        let json = sdem_obs::registry::snapshot().to_json();
        fs::write(&path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("metrics: wrote {path}");
    }
    eprintln!(
        "replay: {} event(s) — {} recovered, {} executed{}; {} worker restart(s), \
         {} degraded, {} rejected{}",
        report.events,
        report.recovered,
        report.executed,
        if report.halted { " (halted)" } else { "" },
        report.stats.worker_restarts,
        report.stats.degraded,
        report.stats.rejected,
        if report.stats.failed {
            "; FAILED FAST (restart budget exhausted)"
        } else {
            ""
        },
    );
    Ok(())
}

fn experiment(args: &Args) -> Result<(), CliError> {
    let kind = args.get_or("kind", "synthetic");
    let cores = args.get_usize("cores", 8)?;
    let trials = args.get_usize("trials", 10)?;
    let seed = args.get_u64("seed", 0x5DE0)?;
    let platform = platform_from(args)?;
    let runner = runner_from(args)?;

    let tasks_n = args.get_usize("tasks", 40)?;
    let x_ms = args.get_f64("x-ms", 400.0)?;
    let u = args.get_f64("u", 4.0)?;
    let instances = args.get_usize("instances", 20)?;
    let make_tasks = |s: u64| match kind {
        "synthetic" => Ok(synthetic::sporadic(
            &SyntheticConfig::paper(tasks_n, Time::from_millis(x_ms)),
            s,
        )),
        "dspstone" => Ok(stream(
            &[Benchmark::fft_1024(), Benchmark::matrix_24()],
            u,
            instances,
            s,
        )),
        other => Err(format!("unknown workload kind `{other}`")),
    };
    make_tasks(0)?; // Surface an unknown kind before spawning workers.

    let outcome = runner.run(&[()], trials, seed, |_, ctx| {
        run_trial_resampling(
            |s| make_tasks(s).expect("kind validated above"),
            &platform,
            cores,
            ctx,
        )
    });
    let results = &outcome.per_point[0];
    if results.is_empty() {
        return Err("no feasible seeds for this configuration".into());
    }
    println!(
        "experiment: kind={kind} trials={} cores={cores} (seed {seed:#x})",
        results.len()
    );
    println!(
        "  SDEM-ON vs MBKP   system saving: {:6.2}%   memory saving: {:6.2}%",
        mean(results, |r| r.sdem_system_saving_vs_mbkp()) * 100.0,
        mean(results, |r| r.sdem_memory_saving_vs_mbkp()) * 100.0,
    );
    println!(
        "  MBKPS   vs MBKP   system saving: {:6.2}%   memory saving: {:6.2}%",
        mean(results, |r| r.mbkps_system_saving_vs_mbkp()) * 100.0,
        mean(results, |r| r.mbkps_memory_saving_vs_mbkp()) * 100.0,
    );
    println!(
        "  SDEM-ON vs MBKPS  improvement:   {:6.2}%",
        mean(results, |r| r.sdem_improvement_over_mbkps()) * 100.0,
    );
    eprintln!("sweep: {}", outcome.stats);
    Ok(())
}

fn trace(args: &Args) -> Result<(), CliError> {
    let tasks = load_tasks(args)?;
    let platform = platform_from(args)?;
    let scheme = args.get_or("scheme", "sdem-on");
    let cores = args.get_usize("cores", 8)?;
    let samples = args.get_usize("samples", 500)?;
    let sched = build_schedule(scheme, &tasks, &platform, cores)?;
    sched.validate(&tasks).map_err(|e| e.to_string())?;
    let csv = trace_to_csv(&power_trace(
        &sched,
        &platform,
        sim_options(scheme),
        samples,
    ));
    match args.get("out") {
        Some(path) => {
            fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {samples}-sample power trace to {path}");
        }
        None => print!("{csv}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&sv(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
        assert!(run(&sv(&["frobnicate"])).is_err());
    }

    #[test]
    fn dag_generate_solve_sweep_round_trip() {
        let dir = std::env::temp_dir().join("sdem-cli-dag-test");
        fs::create_dir_all(&dir).unwrap();
        let suite = dir.join("suite.yaml");
        let suite_path = suite.to_str().unwrap().to_string();

        run(&sv(&[
            "dag",
            "generate",
            "--count",
            "3",
            "--nodes",
            "7",
            "--seed",
            "11",
            "--out",
            &suite_path,
        ]))
        .unwrap();
        run(&sv(&[
            "dag",
            "solve",
            "--input",
            &suite_path,
            "--cores",
            "4",
            "--oracle",
        ]))
        .unwrap();

        // The sweep's CSV must be byte-identical across worker counts.
        let csv_for = |threads: &str| {
            let out = dir.join(format!("sweep-{threads}.csv"));
            let out_path = out.to_str().unwrap().to_string();
            run(&sv(&[
                "dag",
                "sweep",
                "--suites",
                "2",
                "--threads",
                threads,
                "--csv",
                &out_path,
            ]))
            .unwrap();
            fs::read_to_string(out).unwrap()
        };
        let serial = csv_for("1");
        assert_eq!(serial, csv_for("4"));
        assert!(serial.starts_with("suite,seed,cores,feasible"));

        // Usage errors carry the usage taxonomy code.
        let missing = run(&sv(&["dag"])).unwrap_err();
        assert_eq!(missing.kind, ErrorKind::Usage);
        let unknown = run(&sv(&["dag", "frobnicate"])).unwrap_err();
        assert_eq!(unknown.kind, ErrorKind::Usage);
    }

    #[test]
    fn generate_schedule_compare_round_trip() {
        let dir = std::env::temp_dir().join("sdem-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tasks.txt");
        let path = file.to_str().unwrap().to_string();

        run(&sv(&[
            "generate",
            "--kind",
            "synthetic",
            "--tasks",
            "12",
            "--seed",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&sv(&[
            "schedule", "--input", &path, "--scheme", "sdem-on", "--quiet",
        ]))
        .unwrap();
        run(&sv(&[
            "schedule", "--input", &path, "--scheme", "mbkp", "--quiet",
        ]))
        .unwrap();
        run(&sv(&["compare", "--input", &path])).unwrap();
        let csv = dir.join("trace.csv");
        let csv_path = csv.to_str().unwrap().to_string();
        run(&sv(&[
            "trace",
            "--input",
            &path,
            "--samples",
            "50",
            "--out",
            &csv_path,
        ]))
        .unwrap();
        let text = fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("time_s,"));
        assert_eq!(text.lines().count(), 51);
        fs::remove_file(&csv).ok();
        fs::remove_file(&file).ok();
    }

    #[test]
    fn common_release_schemes_require_common_release_input() {
        let dir = std::env::temp_dir().join("sdem-cli-test2");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("cr.txt");
        let path = file.to_str().unwrap().to_string();
        run(&sv(&[
            "generate",
            "--kind",
            "common-release",
            "--tasks",
            "6",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&sv(&[
            "schedule",
            "--input",
            &path,
            "--scheme",
            "cr-alpha-nonzero",
            "--quiet",
        ]))
        .unwrap();
        run(&sv(&[
            "schedule",
            "--input",
            &path,
            "--scheme",
            "cr-overhead",
            "--quiet",
            "--gantt",
        ]))
        .unwrap();
        fs::remove_file(&file).ok();
    }

    #[test]
    fn experiment_command_and_error_paths() {
        run(&sv(&[
            "experiment",
            "--trials",
            "2",
            "--tasks",
            "12",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(run(&sv(&["sweep", "--figure", "fig9"])).is_err());
        assert!(run(&sv(&["experiment", "--kind", "quantum"])).is_err());
    }

    #[test]
    fn oracle_flag_and_tolerance_are_wired() {
        run(&sv(&[
            "experiment",
            "--trials",
            "2",
            "--tasks",
            "12",
            "--oracle",
        ]))
        .unwrap();
        // A bare --oracle-tol also enables the oracle.
        run(&sv(&[
            "experiment",
            "--trials",
            "1",
            "--tasks",
            "12",
            "--oracle-tol",
            "1e-5",
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "experiment",
            "--trials",
            "1",
            "--oracle-tol",
            "-1.0",
        ]))
        .is_err());
    }

    #[test]
    fn schedule_fallback_degrades_on_scheme_mismatch() {
        let dir = std::env::temp_dir().join("sdem-cli-fallback");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("staggered.txt");
        let path = file.to_str().unwrap().to_string();
        // Sporadic releases are NOT common-release, so cr-alpha-nonzero
        // rejects the instance outright…
        run(&sv(&[
            "generate",
            "--kind",
            "synthetic",
            "--tasks",
            "8",
            "--seed",
            "2",
            "--out",
            &path,
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "schedule",
            "--input",
            &path,
            "--scheme",
            "cr-alpha-nonzero",
            "--quiet",
        ]))
        .is_err());
        // …but the fallback chain degrades to race-to-idle and completes.
        run(&sv(&[
            "schedule",
            "--input",
            &path,
            "--scheme",
            "cr-alpha-nonzero",
            "--fallback",
            "--quiet",
        ]))
        .unwrap();
        // Baselines have no fallback route.
        assert!(run(&sv(&[
            "schedule",
            "--input",
            &path,
            "--scheme",
            "mbkp",
            "--fallback",
            "--quiet",
        ]))
        .is_err());
        fs::remove_file(&file).ok();
    }

    #[test]
    fn robust_sweep_quarantines_and_repro_replays() {
        let dir = std::env::temp_dir().join("sdem-cli-robust");
        fs::create_dir_all(&dir).unwrap();
        let q = dir.join("quarantine.jsonl");
        let qp = q.to_str().unwrap().to_string();
        run(&sv(&[
            "sweep",
            "--figure",
            "fig6",
            "--instances",
            "4",
            "--trials",
            "2",
            "--threads",
            "2",
            "--inject",
            "panics=2,nans=1",
            "--quarantine",
            &qp,
        ]))
        .unwrap();
        let text = fs::read_to_string(&q).unwrap();
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("solver-panic"));
        assert!(text.contains("non-finite-energy"));
        assert!(text.contains("--kind fig6"));

        // Replay the first record's exact seed: the fault was injected, so
        // the replayed trial is clean and repro exits successfully.
        let seed = text
            .lines()
            .next()
            .unwrap()
            .split("\"seed\":\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap()
            .to_string();
        run(&sv(&[
            "repro",
            "--seed",
            &seed,
            "--kind",
            "fig6",
            "--instances",
            "4",
            "--u",
            "2",
        ]))
        .unwrap();
        assert!(run(&sv(&["repro"])).is_err());
        assert!(run(&sv(&["sweep", "--inject", "gremlins=1"])).is_err());
        fs::remove_file(&q).ok();
    }

    #[test]
    fn sweep_metrics_trace_and_stats_round_trip() {
        let dir = std::env::temp_dir().join("sdem-cli-obs");
        fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.json");
        let trace = dir.join("trace.jsonl");
        let mp = metrics.to_str().unwrap().to_string();
        let tp = trace.to_str().unwrap().to_string();
        run(&sv(&[
            "sweep",
            "--figure",
            "fig7a",
            "--trials",
            "1",
            "--tasks",
            "8",
            "--threads",
            "2",
            "--metrics",
            &mp,
            "--trace",
            &tp,
        ]))
        .unwrap();

        // Both files validate and summarize (other tests in this binary
        // may sweep concurrently while the registry is armed, so only
        // structural facts are asserted — exact counts live in the
        // single-process obs_identity suite).
        run(&sv(&["stats", "--input", &mp, "--check"])).unwrap();
        run(&sv(&["stats", "--input", &tp, "--check"])).unwrap();
        let text = fs::read_to_string(&metrics).unwrap();
        assert!(text.contains("\"sdem_metrics\": 1"));
        assert!(text.contains("trials_run"));
        assert!(text.contains("energy/sdem_on_total_j"));
        assert!(fs::read_to_string(&trace)
            .unwrap()
            .starts_with("{\"sdem_trace\":1"));

        // A corrupt file must fail validation, and stats needs --input.
        let torn = dir.join("torn.json");
        fs::write(&torn, &text[..text.len() / 2]).unwrap();
        assert!(run(&sv(&[
            "stats",
            "--input",
            torn.to_str().unwrap(),
            "--check"
        ]))
        .is_err());
        assert!(run(&sv(&["stats"])).is_err());
        assert!(run(&sv(&["stats", "--input", "/nonexistent/x.json"])).is_err());

        for f in [&metrics, &trace, &torn] {
            fs::remove_file(f).ok();
        }
    }

    #[test]
    fn checkpointed_sweep_halts_and_resumes() {
        let dir = std::env::temp_dir().join("sdem-cli-ckpt");
        fs::create_dir_all(&dir).unwrap();
        let cp = dir.join("ckpt.jsonl");
        let cpp = cp.to_str().unwrap().to_string();
        run(&sv(&[
            "sweep",
            "--figure",
            "fig6",
            "--instances",
            "4",
            "--trials",
            "2",
            "--threads",
            "2",
            "--checkpoint",
            &cpp,
            "--halt-after",
            "5",
        ]))
        .unwrap();
        run(&sv(&[
            "sweep",
            "--figure",
            "fig6",
            "--instances",
            "4",
            "--trials",
            "2",
            "--threads",
            "4",
            "--resume",
            &cpp,
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "sweep",
            "--checkpoint",
            "a.jsonl",
            "--resume",
            "b.jsonl",
        ]))
        .is_err());
        // Resuming under a different grid is rejected.
        assert!(run(&sv(&[
            "sweep",
            "--figure",
            "fig6",
            "--instances",
            "4",
            "--trials",
            "3",
            "--resume",
            &cpp,
        ]))
        .is_err());
        fs::remove_file(&cp).ok();
    }

    #[test]
    fn unknown_scheme_and_kind_are_reported() {
        assert!(run(&sv(&["generate", "--kind", "quantum"])).is_err());
        let dir = std::env::temp_dir().join("sdem-cli-test3");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.txt");
        let path = file.to_str().unwrap().to_string();
        run(&sv(&["generate", "--tasks", "4", "--out", &path])).unwrap();
        assert!(run(&sv(&["schedule", "--input", &path, "--scheme", "magic"])).is_err());
        fs::remove_file(&file).ok();
    }
}
