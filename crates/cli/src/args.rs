//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed arguments: a subcommand plus `--key value` options and bare
/// `--flag` switches.
#[derive(Debug, Default)]
pub struct Args {
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Option keys that are boolean switches (no value follows).
const SWITCHES: &[&str] = &[
    "gantt",
    "quiet",
    "oracle",
    "oracle-keep-going",
    "fallback",
    "check",
];

impl Args {
    /// Parses `argv` (after the subcommand).
    ///
    /// # Errors
    ///
    /// Rejects positional arguments and options missing their value.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut args = Self::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{token}`"));
            };
            if SWITCHES.contains(&key) {
                args.flags.push(key.to_string());
                i += 1;
                continue;
            }
            let Some(value) = argv.get(i + 1) else {
                return Err(format!("option `--{key}` is missing a value"));
            };
            args.options.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(args)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// Reports unparsable numbers with the offending key.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option `--{key}` expects a number, got `{v}`")),
        }
    }

    /// An integer option with a default.
    ///
    /// # Errors
    ///
    /// Reports unparsable integers with the offending key.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option `--{key}` expects an integer, got `{v}`")),
        }
    }

    /// A seed option with a default. Accepts decimal or `0x…` hex — the
    /// form quarantine records print seeds in, so a record's seed can be
    /// pasted into `repro --seed` verbatim.
    ///
    /// # Errors
    ///
    /// Reports unparsable seeds with the offending key.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                parsed.map_err(|_| format!("option `--{key}` expects an integer, got `{v}`"))
            }
        }
    }

    /// Whether a boolean switch was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_options_and_switches() {
        let a = Args::parse(&sv(&["--tasks", "40", "--gantt", "--x-ms", "250.5"])).unwrap();
        assert_eq!(a.get_usize("tasks", 0).unwrap(), 40);
        assert_eq!(a.get_f64("x-ms", 0.0).unwrap(), 250.5);
        assert!(a.has_flag("gantt"));
        assert!(!a.has_flag("quiet"));
        assert_eq!(a.get_or("scheme", "sdem-on"), "sdem-on");
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(Args::parse(&sv(&["tasks"])).is_err());
        assert!(Args::parse(&sv(&["--tasks"])).is_err());
    }

    #[test]
    fn reports_bad_numbers() {
        let a = Args::parse(&sv(&["--tasks", "many"])).unwrap();
        let err = a.get_usize("tasks", 0).unwrap_err();
        assert!(err.contains("tasks"));
        let a = Args::parse(&sv(&["--x-ms", "fast"])).unwrap();
        assert!(a.get_f64("x-ms", 0.0).is_err());
        let a = Args::parse(&sv(&["--seed", "s"])).unwrap();
        assert!(a.get_u64("seed", 0).is_err());
        let a = Args::parse(&sv(&["--seed", "0xzz"])).unwrap();
        assert!(a.get_u64("seed", 0).is_err());
    }

    #[test]
    fn seeds_accept_hex_as_printed_by_quarantine_records() {
        let a = Args::parse(&sv(&["--seed", "0x000000000f166000"])).unwrap();
        assert_eq!(a.get_u64("seed", 0).unwrap(), 0xF16_6000);
        let a = Args::parse(&sv(&["--seed", "255"])).unwrap();
        assert_eq!(a.get_u64("seed", 0).unwrap(), 255);
        let a = Args::parse(&sv(&["--oracle-keep-going", "--fallback"])).unwrap();
        assert!(a.has_flag("oracle-keep-going"));
        assert!(a.has_flag("fallback"));
    }

    #[test]
    fn defaults_flow_through() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.get_f64("alpha-m", 4.0).unwrap(), 4.0);
        assert_eq!(a.get_u64("seed", 1).unwrap(), 1);
    }
}
