//! Byte-exact regression net for the committed `results/` artifacts.
//!
//! Each test regenerates a figure's CSV with the exact configuration its
//! binary uses by default (`fig6`: 30 instances/stream; `fig7a`/`fig7b`:
//! 60 tasks; all at `paper::TRIALS_PER_POINT` trials) and compares it
//! against the checked-in golden with `assert_eq!` on the raw bytes — not
//! a tolerance. The sweep engine's per-trial seeding makes the outputs
//! bit-identical across thread counts and build profiles, so any byte of
//! drift here is a semantic change to a generator, solver, baseline or
//! meter, and must be reconciled with `results/README.md` and
//! `EXPERIMENTS.md` before the golden is re-recorded.

use sdem_bench::figures::{
    self, dag_energy_with, fig6_with, fig7a_with, fig7b_with, DagSweepConfig,
};
use sdem_exec::SweepRunner;
use sdem_workload::paper;

/// Committed goldens, bundled at compile time so the test is hermetic.
const GOLDEN_FIG6: &str = include_str!("../../../results/fig6.csv");
const GOLDEN_FIG7A: &str = include_str!("../../../results/fig7a.csv");
const GOLDEN_FIG7B: &str = include_str!("../../../results/fig7b.csv");
const GOLDEN_DAG: &str = include_str!("../../../results/dag_energy_vs_cores.csv");

fn assert_bytes_equal(regenerated: &str, golden: &str, figure: &str) {
    if regenerated == golden {
        return;
    }
    // Locate the first diverging line so the failure is actionable
    // without dumping two whole files.
    for (i, (new, old)) in regenerated.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            new,
            old,
            "{figure}: first divergence at line {} (regenerate with the \
             command in results/README.md if the change is intentional)",
            i + 1
        );
    }
    panic!(
        "{figure}: line counts differ ({} regenerated vs {} golden)",
        regenerated.lines().count(),
        golden.lines().count()
    );
}

#[test]
fn fig6_csv_matches_committed_golden_byte_for_byte() {
    let (rows, _) = fig6_with(30, paper::TRIALS_PER_POINT, &SweepRunner::new());
    assert_bytes_equal(&figures::fig6_to_csv(&rows), GOLDEN_FIG6, "fig6.csv");
}

#[test]
fn fig7a_csv_matches_committed_golden_byte_for_byte() {
    let (cells, _) = fig7a_with(60, paper::TRIALS_PER_POINT, &SweepRunner::new());
    assert_bytes_equal(
        &figures::fig7_to_csv(&cells, "alpha_m_w"),
        GOLDEN_FIG7A,
        "fig7a.csv",
    );
}

#[test]
fn dag_energy_csv_matches_committed_golden_byte_for_byte() {
    let (rows, _) = dag_energy_with(&DagSweepConfig::paper(), &SweepRunner::new());
    assert_bytes_equal(
        &figures::dag_energy_to_csv(&rows),
        GOLDEN_DAG,
        "dag_energy_vs_cores.csv",
    );
}

#[test]
fn fig7b_csv_matches_committed_golden_byte_for_byte() {
    let (cells, _) = fig7b_with(60, paper::TRIALS_PER_POINT, &SweepRunner::new());
    assert_bytes_equal(
        &figures::fig7_to_csv(&cells, "xi_m_ms"),
        GOLDEN_FIG7B,
        "fig7b.csv",
    );
}
