//! Golden-master regression net for the experiment pipeline: a tiny,
//! deterministic Fig. 6 configuration must keep producing exactly the
//! recorded series. Any change to the workload generator, the schedulers,
//! the baselines or the energy accounting shows up here first — and must
//! then be reconciled with EXPERIMENTS.md.
//!
//! Tolerance is loose enough (1e-6 relative) to survive benign
//! floating-point reassociation but tight enough to catch semantic drift.

use sdem_bench::figures::fig6;

/// `fig6(4 instances/stream, 2 trials)` recorded on the toolchain that
/// produced `results/` — columns: (U, SDEM-ON mem, MBKPS mem,
/// SDEM-ON sys, MBKPS sys).
const GOLDEN_FIG6: [(f64, f64, f64, f64, f64); 8] = [
    (
        2.0,
        0.391448400805,
        0.131311455766,
        0.387482840673,
        0.130607831945,
    ),
    (
        3.0,
        0.479141759141,
        0.287401445453,
        0.475908623124,
        0.286243101128,
    ),
    (
        4.0,
        0.535652605888,
        0.422647634487,
        0.533018934776,
        0.421460409641,
    ),
    (
        5.0,
        0.569220786595,
        0.432630130305,
        0.567088395680,
        0.431632662946,
    ),
    (
        6.0,
        0.632463097394,
        0.540642314871,
        0.630649941673,
        0.539671223229,
    ),
    (
        7.0,
        0.664542442046,
        0.598301023266,
        0.662842439124,
        0.597411787691,
    ),
    (
        8.0,
        0.715156948349,
        0.648141207684,
        0.713378769497,
        0.647166172052,
    ),
    (
        9.0,
        0.699194054221,
        0.623867858674,
        0.697727121431,
        0.623085614073,
    ),
];

#[test]
fn fig6_tiny_configuration_is_bit_stable() {
    let rows = fig6(4, 2);
    assert_eq!(rows.len(), GOLDEN_FIG6.len());
    for (row, golden) in rows.iter().zip(&GOLDEN_FIG6) {
        assert_eq!(row.u, golden.0);
        let pairs = [
            ("sdem_memory", row.sdem_memory_saving, golden.1),
            ("mbkps_memory", row.mbkps_memory_saving, golden.2),
            ("sdem_system", row.sdem_system_saving, golden.3),
            ("mbkps_system", row.mbkps_system_saving, golden.4),
        ];
        for (name, measured, expected) in pairs {
            assert!(
                (measured - expected).abs() <= 1e-6 * expected.abs().max(1e-6),
                "U = {}: {name} drifted: measured {measured:.12}, golden {expected:.12} \
                 — if intentional, regenerate results/ and update EXPERIMENTS.md",
                row.u
            );
        }
    }
}

#[test]
fn fig6_tiny_configuration_matches_paper_shape() {
    // The same invariants EXPERIMENTS.md claims, on the tiny config.
    for g in &GOLDEN_FIG6 {
        assert!(
            g.1 > g.2,
            "SDEM-ON must beat MBKPS on memory at U = {}",
            g.0
        );
        assert!(
            g.3 > g.4,
            "SDEM-ON must beat MBKPS on system at U = {}",
            g.0
        );
    }
    // Savings trend upward from U = 2 to U = 9 for both schemes.
    assert!(GOLDEN_FIG6[7].1 > GOLDEN_FIG6[0].1);
    assert!(GOLDEN_FIG6[7].2 > GOLDEN_FIG6[0].2);
}
