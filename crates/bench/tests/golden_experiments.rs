//! Golden-master regression net for the experiment pipeline: a tiny,
//! deterministic Fig. 6 configuration must keep producing exactly the
//! recorded series. Any change to the workload generator, the schedulers,
//! the baselines or the energy accounting shows up here first — and must
//! then be reconciled with EXPERIMENTS.md.
//!
//! Tolerance is loose enough (1e-6 relative) to survive benign
//! floating-point reassociation but tight enough to catch semantic drift.

use sdem_bench::figures::fig6;

/// `fig6(4 instances/stream, 2 trials)` recorded under the sweep engine's
/// per-trial seeding (grid seed × trial index) — columns: (U, SDEM-ON mem,
/// MBKPS mem, SDEM-ON sys, MBKPS sys).
const GOLDEN_FIG6: [(f64, f64, f64, f64, f64); 8] = [
    (
        2.0,
        0.342542089191,
        0.143513478366,
        0.338448833768,
        0.142719500203,
    ),
    (
        3.0,
        0.425646396514,
        0.257389046242,
        0.422396673505,
        0.256359841048,
    ),
    (
        4.0,
        0.525895889562,
        0.356391519596,
        0.523273778550,
        0.355346328571,
    ),
    (
        5.0,
        0.554981492214,
        0.451656206561,
        0.552810993397,
        0.450658557936,
    ),
    (
        6.0,
        0.588684002802,
        0.479703850330,
        0.586547988559,
        0.478746991616,
    ),
    (
        7.0,
        0.674421822943,
        0.582519268012,
        0.672623305200,
        0.581616501716,
    ),
    (
        8.0,
        0.664557850643,
        0.575760394150,
        0.662918714760,
        0.574906610033,
    ),
    (
        9.0,
        0.716488975057,
        0.639370192892,
        0.715031320913,
        0.638553582462,
    ),
];

#[test]
fn fig6_tiny_configuration_is_bit_stable() {
    let rows = fig6(4, 2);
    assert_eq!(rows.len(), GOLDEN_FIG6.len());
    for (row, golden) in rows.iter().zip(&GOLDEN_FIG6) {
        assert_eq!(row.u, golden.0);
        let pairs = [
            ("sdem_memory", row.sdem_memory_saving, golden.1),
            ("mbkps_memory", row.mbkps_memory_saving, golden.2),
            ("sdem_system", row.sdem_system_saving, golden.3),
            ("mbkps_system", row.mbkps_system_saving, golden.4),
        ];
        for (name, measured, expected) in pairs {
            assert!(
                (measured - expected).abs() <= 1e-6 * expected.abs().max(1e-6),
                "U = {}: {name} drifted: measured {measured:.12}, golden {expected:.12} \
                 — if intentional, regenerate results/ and update EXPERIMENTS.md",
                row.u
            );
        }
    }
}

#[test]
fn fig6_tiny_configuration_matches_paper_shape() {
    // The same invariants EXPERIMENTS.md claims, on the tiny config.
    for g in &GOLDEN_FIG6 {
        assert!(
            g.1 > g.2,
            "SDEM-ON must beat MBKPS on memory at U = {}",
            g.0
        );
        assert!(
            g.3 > g.4,
            "SDEM-ON must beat MBKPS on system at U = {}",
            g.0
        );
    }
    // Savings trend upward from U = 2 to U = 9 for both schemes.
    assert!(GOLDEN_FIG6[7].1 > GOLDEN_FIG6[0].1);
    assert!(GOLDEN_FIG6[7].2 > GOLDEN_FIG6[0].2);
}
