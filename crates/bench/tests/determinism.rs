//! The sweep engine's contract: results are a pure function of the grid
//! seed — the worker count must never show up in the output.

use sdem_bench::figures::{fig6_with, fig7a_with};
use sdem_exec::SweepRunner;

#[test]
fn fig7a_is_thread_count_invariant() {
    let (serial, serial_stats) = fig7a_with(12, 2, &SweepRunner::new().with_threads(1));
    let (parallel, parallel_stats) = fig7a_with(12, 2, &SweepRunner::new().with_threads(4));
    assert_eq!(serial_stats.trials, parallel_stats.trials);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.x_ms.to_bits(), b.x_ms.to_bits(), "x drifted");
        assert_eq!(a.param.to_bits(), b.param.to_bits(), "α_m drifted");
        assert_eq!(
            a.improvement.to_bits(),
            b.improvement.to_bits(),
            "improvement differs at (α_m = {}, x = {}) between 1 and 4 threads",
            a.param,
            a.x_ms
        );
    }
}

#[test]
fn fig6_is_thread_count_invariant() {
    let (serial, _) = fig6_with(3, 2, &SweepRunner::new().with_threads(1));
    let (parallel, _) = fig6_with(3, 2, &SweepRunner::new().with_threads(8));
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.sdem_memory_saving.to_bits(),
            b.sdem_memory_saving.to_bits()
        );
        assert_eq!(
            a.mbkps_memory_saving.to_bits(),
            b.mbkps_memory_saving.to_bits()
        );
        assert_eq!(
            a.sdem_system_saving.to_bits(),
            b.sdem_system_saving.to_bits()
        );
        assert_eq!(
            a.mbkps_system_saving.to_bits(),
            b.mbkps_system_saving.to_bits()
        );
    }
}
