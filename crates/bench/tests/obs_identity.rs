//! Observability must be a pure side channel.
//!
//! Three contracts, each enforced bit-for-bit:
//!
//! * arming the metrics registry and the trace sink does not perturb a
//!   sweep's results — every cell is bit-identical to an untraced run;
//! * the exported energy gauges equal the untraced aggregate — a fold
//!   over the merged per-trial reports in sorted trial order — exactly,
//!   not to a tolerance;
//! * the gauges and the integer energy/sleep counters are identical for
//!   any worker-thread count (latency histograms measure wall time, so
//!   only their sample *counts* are compared).
//!
//! The registry and trace sink are process-global, so these assertions
//! live in one serialized test: integration tests get their own process,
//! and nothing else in this binary touches `sdem-obs`.

use sdem_bench::experiment::{run_trial_checked, OracleCheck};
use sdem_bench::figures::{self, fig7a_with};
use sdem_exec::SweepRunner;
use sdem_types::Time;
use sdem_workload::synthetic::{sporadic, SyntheticConfig};

#[test]
fn observability_is_bit_transparent_and_gauges_match_untraced_fold() {
    // --- Untraced reference sweep -----------------------------------
    let (plain, _) = fig7a_with(12, 2, &SweepRunner::new().with_threads(2));

    // --- Same sweep, fully instrumented -----------------------------
    sdem_obs::registry::reset();
    sdem_obs::registry::set_enabled(true);
    sdem_obs::trace::set_enabled(true);
    let (metered, _) = fig7a_with(12, 2, &SweepRunner::new().with_threads(2));
    sdem_obs::registry::set_enabled(false);
    sdem_obs::trace::set_enabled(false);
    let two_threads = sdem_obs::registry::snapshot();
    let events = sdem_obs::trace::drain();

    assert_eq!(plain.len(), metered.len());
    for (a, b) in plain.iter().zip(&metered) {
        assert_eq!(a.param.to_bits(), b.param.to_bits());
        assert_eq!(a.x_ms.to_bits(), b.x_ms.to_bits());
        assert_eq!(
            a.improvement.to_bits(),
            b.improvement.to_bits(),
            "instrumentation changed the result at (α_m={}, x={})",
            a.param,
            a.x_ms
        );
    }
    assert!(!events.is_empty(), "trace sink captured no spans");
    assert!(!two_threads.histograms.is_empty(), "no latency histograms");

    // --- Same sweep, one worker: the aggregate must not move ---------
    sdem_obs::registry::reset();
    sdem_obs::registry::set_enabled(true);
    let _ = fig7a_with(12, 2, &SweepRunner::new().with_threads(1));
    sdem_obs::registry::set_enabled(false);
    let one_thread = sdem_obs::registry::snapshot();

    assert_eq!(one_thread.counters, two_threads.counters);
    assert_eq!(one_thread.gauges.len(), two_threads.gauges.len());
    assert_eq!(one_thread.histograms.len(), two_threads.histograms.len());
    for ((la, a), (lb, b)) in one_thread.gauges.iter().zip(&two_threads.gauges) {
        assert_eq!(la, lb);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "gauge {la} drifted between 1 and 2 worker threads"
        );
    }
    for ((la, a), (lb, b)) in one_thread.histograms.iter().zip(&two_threads.histograms) {
        assert_eq!(la, lb);
        assert_eq!(a.count(), b.count(), "histogram {la} lost samples");
    }

    // --- Gauges equal an independent fold over the raw reports -------
    // Hand-built per-point results (outside any sweep machinery), folded
    // here exactly the way an untraced consumer would sum them; the
    // published gauges must reproduce those bits.
    let platform = sdem_power::Platform::paper_defaults();
    let cfg = SyntheticConfig::paper(12, Time::from_millis(300.0));
    let per_point: Vec<Vec<_>> = [[3u64, 5], [8, 13]]
        .iter()
        .map(|seeds| {
            seeds
                .iter()
                .filter_map(|&s| {
                    run_trial_checked(&sporadic(&cfg, s), &platform, 8, OracleCheck::Off).ok()
                })
                .collect()
        })
        .collect();
    assert!(per_point.iter().any(|p| !p.is_empty()), "no feasible seeds");

    let mut expected = [(0.0f64, 0.0f64); 4];
    for results in &per_point {
        for r in results {
            for (acc, report) in
                expected
                    .iter_mut()
                    .zip([&r.sdem_on, &r.mbkp, &r.mbkps, &r.mbkps_always])
            {
                acc.0 += report.core_total().value();
                acc.1 += report.memory_total().value();
            }
        }
    }

    sdem_obs::registry::reset();
    sdem_obs::registry::set_enabled(true);
    figures::publish_energy_gauges(&per_point);
    sdem_obs::registry::set_enabled(false);
    let snapshot = sdem_obs::registry::snapshot();
    let gauge = |label: &str| {
        snapshot
            .gauges
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("gauge {label} missing"))
            .1
    };
    for (scheme, (core, memory)) in ["sdem_on", "mbkp", "mbkps", "mbkps_always"]
        .iter()
        .zip(expected)
    {
        assert_eq!(
            gauge(&format!("energy/{scheme}_core_j")).to_bits(),
            core.to_bits(),
            "{scheme}: core gauge is not the untraced fold"
        );
        assert_eq!(
            gauge(&format!("energy/{scheme}_memory_j")).to_bits(),
            memory.to_bits(),
            "{scheme}: memory gauge is not the untraced fold"
        );
        assert_eq!(
            gauge(&format!("energy/{scheme}_total_j")).to_bits(),
            (core + memory).to_bits(),
            "{scheme}: total gauge is not core + memory"
        );
    }
}
