//! Throughput of the shared `IntervalSet` kernel: coalescing construction,
//! union, complement-within-span, and gap extraction at several set sizes.
//! The sweep engine leans on these per trial, so regressions here show up
//! directly in sweep throughput.

use sdem_bench::microbench::{bench, black_box};
use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem_types::{IntervalSet, Time};

/// Deterministic raw spans (unsorted, overlapping) over a window that grows
/// with `n`, so coalescing leaves interval counts proportional to `n` instead
/// of collapsing dense inputs into one long interval.
fn raw_spans(seed: u64, n: usize) -> Vec<(Time, Time)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let window = n as f64 * 10.0;
    (0..n)
        .map(|_| {
            let start = rng.gen_range(0.0f64..window);
            let len = rng.gen_range(0.01f64..5.0);
            (Time::from_secs(start), Time::from_secs(start + len))
        })
        .collect()
}

fn main() {
    for n in [16usize, 128, 1024] {
        let spans_a = raw_spans(0xA0 + n as u64, n);
        let spans_b = raw_spans(0xB0 + n as u64, n);
        let a = IntervalSet::from_spans(spans_a.clone());
        let b = IntervalSet::from_spans(spans_b);
        let window = n as f64 * 10.0;
        let span = (Time::from_secs(-1.0), Time::from_secs(window + 1.0));

        bench(&format!("interval_kernel/from_spans/{n}"), || {
            IntervalSet::from_spans(black_box(spans_a.clone()))
        });
        bench(&format!("interval_kernel/union/{n}"), || {
            black_box(&a).union(black_box(&b))
        });
        bench(&format!("interval_kernel/intersect/{n}"), || {
            black_box(&a).intersect(black_box(&b))
        });
        bench(&format!("interval_kernel/complement_within/{n}"), || {
            black_box(&a).complement_within(black_box(span))
        });
        bench(&format!("interval_kernel/gaps_horizon/{n}"), || {
            black_box(&a).gaps(Some(black_box(span)))
        });
    }
}
