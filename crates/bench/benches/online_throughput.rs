//! Throughput of the online schedulers: how fast SDEM-ON and MBKP process
//! arrival streams (events per second), plus the YDS/OA/AVR substrate on a
//! single core's job list.

use sdem_baselines::{avr, mbkp, oa, yds};
use sdem_bench::microbench::bench;
use sdem_core::{solve, Scheme};
use sdem_power::Platform;
use sdem_types::Time;
use sdem_workload::paper;
use sdem_workload::synthetic::{sporadic, SyntheticConfig};

fn bench_online_schedulers(platform: &Platform) {
    for n in [32usize, 128] {
        let cfg = SyntheticConfig::paper(n, Time::from_millis(300.0));
        let tasks = sporadic(&cfg, 3);
        let m = bench(&format!("online_throughput/sdem_on/{n}"), || {
            solve(&tasks, platform, Scheme::Online).unwrap()
        });
        println!("    {:>14.0} tasks/s", m.per_sec() * n as f64);
        let m = bench(&format!("online_throughput/sdem_on_bounded_8/{n}"), || {
            solve(&tasks, platform, Scheme::OnlineBounded(paper::NUM_CORES)).unwrap()
        });
        println!("    {:>14.0} tasks/s", m.per_sec() * n as f64);
        let m = bench(&format!("online_throughput/mbkp_oa/{n}"), || {
            mbkp::schedule_online(
                &tasks,
                platform,
                paper::NUM_CORES,
                mbkp::Assignment::RoundRobin,
            )
            .unwrap()
        });
        println!("    {:>14.0} tasks/s", m.per_sec() * n as f64);
    }
}

fn bench_single_core_substrate(platform: &Platform) {
    let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
    let tasks = sporadic(&cfg, 17);
    bench("single_core_substrate/yds", || {
        yds::schedule_single_core(&tasks, platform).unwrap()
    });
    bench("single_core_substrate/oa", || {
        oa::schedule_single_core_online(&tasks, platform).unwrap()
    });
    bench("single_core_substrate/avr", || {
        avr::schedule_single_core(&tasks, platform).unwrap()
    });
}

fn main() {
    let platform = Platform::paper_defaults();
    bench_online_schedulers(&platform);
    bench_single_core_substrate(&platform);
}
