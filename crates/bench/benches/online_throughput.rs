//! Throughput of the online schedulers: how fast SDEM-ON and MBKP process
//! arrival streams (events per second), plus the YDS/OA/AVR substrate on a
//! single core's job list.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdem_baselines::{avr, mbkp, oa, yds};
use sdem_core::online::{schedule_online, schedule_online_bounded};
use sdem_power::Platform;
use sdem_types::Time;
use sdem_workload::paper;
use sdem_workload::synthetic::{sporadic, SyntheticConfig};

fn bench_online_schedulers(c: &mut Criterion) {
    let platform = Platform::paper_defaults();
    let mut group = c.benchmark_group("online_throughput");
    group.sample_size(20);
    for n in [32usize, 128] {
        let cfg = SyntheticConfig::paper(n, Time::from_millis(300.0));
        let tasks = sporadic(&cfg, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sdem_on", n), &tasks, |b, t| {
            b.iter(|| schedule_online(t, &platform).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sdem_on_bounded_8", n), &tasks, |b, t| {
            b.iter(|| schedule_online_bounded(t, &platform, paper::NUM_CORES).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mbkp_oa", n), &tasks, |b, t| {
            b.iter(|| {
                mbkp::schedule_online(t, &platform, paper::NUM_CORES, mbkp::Assignment::RoundRobin)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_single_core_substrate(c: &mut Criterion) {
    let platform = Platform::paper_defaults();
    let mut group = c.benchmark_group("single_core_substrate");
    group.sample_size(20);
    let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
    let tasks = sporadic(&cfg, 17);
    group.bench_function("yds", |b| {
        b.iter(|| yds::schedule_single_core(&tasks, &platform).unwrap())
    });
    group.bench_function("oa", |b| {
        b.iter(|| oa::schedule_single_core_online(&tasks, &platform).unwrap())
    });
    group.bench_function("avr", |b| {
        b.iter(|| avr::schedule_single_core(&tasks, &platform).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_online_schedulers,
    bench_single_core_substrate
);
criterion_main!(benches);
