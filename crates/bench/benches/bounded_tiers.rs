//! The bounded-core tier bench: solution quality and throughput of the
//! exact, branch-and-bound and LPT + refine tiers.
//!
//! Two regimes:
//!
//! * **small n** (exact range): every tier runs on the same seeded
//!   Theorem-1 instances; gaps are measured against the exact optimum.
//!   The B&B gap must be exactly zero (it is bit-identical to the
//!   enumerator there — also asserted in `crates/core/tests`).
//! * **large n** (n = 2000, 16 cores): the heuristic tier's regime; gaps
//!   are measured against the convexity lower bound, which brackets the
//!   unknowable optimum from below, and throughput is reported in
//!   instances per second.
//!
//! With `SDEM_BENCH_OUT=FILE` the measurements are also written as a
//! BENCH_bounded.json-style report; without it the bench only prints
//! (CI runs it in that smoke mode).

use sdem_bench::microbench::bench;
use sdem_core::bounded::{
    lower_bound, solve_bnb_in, solve_exact_in, solve_lpt_in, solve_refined_in,
};
use sdem_core::Solution;
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_prng::{Rng, SeedableRng, SplitMix64};
use sdem_types::{Cycles, Task, TaskSet, Time, Watts, Workspace};

const SMALL_N: usize = 10;
const SMALL_SETS: usize = 40;
const LARGE_N: usize = 2000;
const LARGE_SETS: usize = 8;
const CORES_SMALL: usize = 4;
const CORES_LARGE: usize = 16;

fn platform() -> Platform {
    Platform::new(
        CorePower::simple(0.0, 1.0, 3.0),
        MemoryPower::new(Watts::new(4.0)),
    )
}

/// A seeded Theorem-1 instance: one shared window, varied works.
fn instance(n: usize, rng: &mut SplitMix64) -> TaskSet {
    let deadline = Time::from_secs(1.0e3);
    TaskSet::new(
        (0..n)
            .map(|i| {
                Task::new(
                    i,
                    Time::ZERO,
                    deadline,
                    Cycles::new(rng.gen_range(1.0..8.0)),
                )
            })
            .collect(),
    )
    .expect("valid seeded instance")
}

fn energy(sol: &Solution) -> f64 {
    sol.predicted_energy().value()
}

struct TierRow {
    tier: &'static str,
    n: usize,
    cores: usize,
    sets: usize,
    inst_per_sec: f64,
    mean_gap_vs_exact: Option<f64>,
    mean_gap_vs_lower_bound: f64,
}

fn small_n_rows(p: &Platform, ws: &mut Workspace) -> Vec<TierRow> {
    let mut rng = SplitMix64::seed_from_u64(0x5DE1);
    let sets: Vec<TaskSet> = (0..SMALL_SETS)
        .map(|_| instance(SMALL_N, &mut rng))
        .collect();

    type Tier =
        fn(&TaskSet, &Platform, usize, &mut Workspace) -> Result<Solution, sdem_core::SdemError>;
    let tiers: [(&'static str, Tier); 4] = [
        ("exact", solve_exact_in as Tier),
        ("bnb", solve_bnb_in as Tier),
        ("lpt", solve_lpt_in as Tier),
        ("refined", solve_refined_in as Tier),
    ];
    let exact: Vec<f64> = sets
        .iter()
        .map(|t| energy(&solve_exact_in(t, p, CORES_SMALL, ws).expect("feasible")))
        .collect();

    tiers
        .iter()
        .map(|&(tier, solve)| {
            let mut gap_exact = 0.0f64;
            let mut gap_lb = 0.0f64;
            for (t, &e_opt) in sets.iter().zip(&exact) {
                let e = energy(&solve(t, p, CORES_SMALL, ws).expect("feasible"));
                let lb = lower_bound(t, p, CORES_SMALL).value();
                gap_exact += e / e_opt - 1.0;
                gap_lb += e / lb - 1.0;
            }
            let mut cursor = 0usize;
            let m = bench(&format!("bounded_tiers/{tier}/n{SMALL_N}"), || {
                let t = &sets[cursor % sets.len()];
                cursor += 1;
                solve(t, p, CORES_SMALL, ws).expect("feasible")
            });
            TierRow {
                tier,
                n: SMALL_N,
                cores: CORES_SMALL,
                sets: sets.len(),
                inst_per_sec: m.per_sec(),
                mean_gap_vs_exact: Some(gap_exact / sets.len() as f64),
                mean_gap_vs_lower_bound: gap_lb / sets.len() as f64,
            }
        })
        .collect()
}

fn large_n_rows(p: &Platform, ws: &mut Workspace) -> Vec<TierRow> {
    let mut rng = SplitMix64::seed_from_u64(0x1A26E);
    let sets: Vec<TaskSet> = (0..LARGE_SETS)
        .map(|_| instance(LARGE_N, &mut rng))
        .collect();

    type Tier =
        fn(&TaskSet, &Platform, usize, &mut Workspace) -> Result<Solution, sdem_core::SdemError>;
    let tiers: [(&'static str, Tier); 2] = [
        ("lpt", solve_lpt_in as Tier),
        ("refined", solve_refined_in as Tier),
    ];
    tiers
        .iter()
        .map(|&(tier, solve)| {
            let mut gap_lb = 0.0f64;
            for t in sets.iter() {
                let e = energy(&solve(t, p, CORES_LARGE, ws).expect("feasible"));
                let lb = lower_bound(t, p, CORES_LARGE).value();
                gap_lb += e / lb - 1.0;
            }
            let mut cursor = 0usize;
            let m = bench(&format!("bounded_tiers/{tier}/n{LARGE_N}"), || {
                let t = &sets[cursor % sets.len()];
                cursor += 1;
                solve(t, p, CORES_LARGE, ws).expect("feasible")
            });
            TierRow {
                tier,
                n: LARGE_N,
                cores: CORES_LARGE,
                sets: sets.len(),
                inst_per_sec: m.per_sec(),
                mean_gap_vs_exact: None,
                mean_gap_vs_lower_bound: gap_lb / sets.len() as f64,
            }
        })
        .collect()
}

fn main() {
    let p = platform();
    let mut ws = Workspace::new();
    let mut rows = small_n_rows(&p, &mut ws);
    rows.extend(large_n_rows(&p, &mut ws));

    for r in &rows {
        let vs_exact = r
            .mean_gap_vs_exact
            .map_or(String::from("      n/a"), |g| format!("{:9.6}", g));
        println!(
            "    {:7} n={:<5} cores={:<3} gap-vs-exact {vs_exact}  gap-vs-lb {:9.6}  {:>10.0} inst/s",
            r.tier, r.n, r.cores, r.mean_gap_vs_lower_bound, r.inst_per_sec
        );
    }

    // The B&B tier claims bit-identity with the enumerator; its measured
    // gap must be exactly zero, not merely small.
    let bnb = rows.iter().find(|r| r.tier == "bnb").expect("bnb row");
    assert_eq!(
        bnb.mean_gap_vs_exact,
        Some(0.0),
        "B&B diverged from the exact tier"
    );

    let Ok(out) = std::env::var("SDEM_BENCH_OUT") else {
        return;
    };
    let date = std::env::var("SDEM_BENCH_DATE").unwrap_or_else(|_| "unknown".to_string());
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!(
        "  \"benchmark\": \"bounded-core tier solvers ({SMALL_SETS} seeded sets at n={SMALL_N}/{CORES_SMALL} cores, {LARGE_SETS} at n={LARGE_N}/{CORES_LARGE} cores)\",\n"
    ));
    body.push_str("  \"command\": \"SDEM_BENCH_OUT=BENCH_bounded.json cargo bench -p sdem-bench --bench bounded_tiers\",\n");
    body.push_str(&format!("  \"date\": \"{date}\",\n"));
    body.push_str("  \"host\": {\n");
    body.push_str("    \"os\": \"Linux 6.18.5\",\n");
    body.push_str(&format!(
        "    \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    body.push_str("    \"note\": \"gaps are mean relative energy excesses over the seeded instance pool: vs the exact optimum where the enumerator can run (n <= EXACT_LIMIT), and vs the convexity lower bound (Eq. 3 at perfectly balanced loads, generally unattainable) everywhere. The bnb gap vs exact is asserted to be exactly 0.0 — that tier is bit-identical to the enumerator on its shared range. Throughput is full solves per second including schedule assembly, one warmed Workspace.\"\n");
    body.push_str("  },\n");
    body.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let vs_exact = r
            .mean_gap_vs_exact
            .map_or(String::from("null"), |g| format!("{g:.9}"));
        body.push_str(&format!(
            "    {{ \"tier\": \"{}\", \"n\": {}, \"cores\": {}, \"task_sets\": {}, \"inst_per_sec\": {:.1}, \"mean_gap_vs_exact\": {vs_exact}, \"mean_gap_vs_lower_bound\": {:.9} }}{sep}\n",
            r.tier, r.n, r.cores, r.sets, r.inst_per_sec, r.mean_gap_vs_lower_bound
        ));
    }
    body.push_str("  ]\n");
    body.push_str("}\n");
    std::fs::write(&out, body).expect("write BENCH_bounded report");
    eprintln!("bounded_tiers: wrote {out}");
}
