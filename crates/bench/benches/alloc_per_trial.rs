//! Allocation microbenchmark: heap traffic per trial, before vs after the
//! arena-backed [`sdem_types::Workspace`] hot path.
//!
//! Requires the `alloc-count` feature, which swaps in a counting global
//! allocator (the only `unsafe` in the crate, confined to this target):
//!
//! ```text
//! cargo bench -p sdem-bench --bench alloc_per_trial --features alloc-count
//! ```
//!
//! Each case runs one warm-up trial (to populate the workspace pools and
//! any lazily-allocated globals), then measures the steady state over a
//! fixed number of trials and reports mean allocations and bytes per
//! trial. The analytic common-release solvers must reach **zero**
//! allocations per trial on the warmed path — that invariant is asserted
//! here, so a regression fails the bench run loudly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sdem_bench::experiment::{run_trial_with_oracle, run_trial_with_oracle_in};
use sdem_core::{solve, solve_in, Scheme};
use sdem_power::Platform;
use sdem_types::{TaskSet, Time, Workspace};
use sdem_workload::paper;
use sdem_workload::synthetic::{sporadic, SyntheticConfig};

/// A [`System`]-backed allocator that counts calls and bytes.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Mean allocations and bytes per call of `f` over `iters` calls.
fn count_per_iter(iters: u64, mut f: impl FnMut()) -> (f64, f64) {
    let a0 = ALLOCATIONS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    for _ in 0..iters {
        f();
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - a0;
    let bytes = BYTES.load(Ordering::Relaxed) - b0;
    (allocs as f64 / iters as f64, bytes as f64 / iters as f64)
}

fn report(name: &str, (allocs, bytes): (f64, f64)) {
    println!("{name:<52} {allocs:>10.1} allocs/trial {bytes:>12.1} B/trial");
}

fn main() {
    const ITERS: u64 = 200;
    let platform = Platform::paper_defaults();

    // Common-release task set: all releases at 0 (the §4 analytic schemes
    // require it), deadlines staggered so the schedule is non-trivial.
    let common = {
        let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
        let drawn = sporadic(&cfg, 7);
        TaskSet::new(
            drawn
                .iter()
                .map(|t| sdem_types::Task::new(t.id().0, Time::ZERO, t.deadline(), t.work()))
                .collect(),
        )
        .expect("non-empty set")
    };

    // Sporadic set for the full online trial (feasible seed found below).
    let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
    let sporadic_set = (0..64)
        .map(|s| sporadic(&cfg, s))
        .find(|t| run_trial_with_oracle(t, &platform, paper::NUM_CORES, None).is_ok())
        .expect("a feasible seed exists");

    println!("allocation traffic per trial (mean of {ITERS} steady-state trials)");
    println!();

    for scheme in [
        Scheme::CommonReleaseAlphaNonzero,
        Scheme::CommonReleaseOverhead,
    ] {
        let name = format!("{scheme:?}");
        let before = count_per_iter(ITERS, || {
            std::hint::black_box(solve(&common, &platform, scheme).unwrap());
        });
        report(&format!("solve/{name} (allocating)"), before);

        let mut ws = Workspace::new();
        // Warm the pools over a few trials (pool take/recycle order can
        // shuffle buffers, so one pass may leave a short buffer that only
        // grows on a later trial), then measure the steady state.
        for _ in 0..8 {
            let warm = solve_in(&common, &platform, scheme, &mut ws).unwrap();
            ws.recycle_schedule(warm.into_schedule());
        }
        let after = count_per_iter(ITERS, || {
            let s = solve_in(&common, &platform, scheme, &mut ws).unwrap();
            std::hint::black_box(&s);
            ws.recycle_schedule(s.into_schedule());
        });
        report(&format!("solve_in/{name} (warmed workspace)"), after);
        assert_eq!(
            after.0, 0.0,
            "analytic scheme {name} must be allocation-free on the warmed \
             workspace path (got {} allocs/trial)",
            after.0
        );
        println!();
    }

    // The bounded tiers, one size class per tier: BoundedAuto routes the
    // small set to the enumerator, the middle one to the branch-and-bound
    // and the large one to LPT + refine. Each must be allocation-free on
    // the warmed workspace path, searches included.
    for (tier, n) in [("exact", 12usize), ("bnb", 18), ("refined", 200)] {
        let deadline = Time::from_millis(400.0);
        let bounded_set = TaskSet::new(
            (0..n)
                .map(|i| {
                    sdem_types::Task::new(
                        i,
                        Time::ZERO,
                        deadline,
                        sdem_types::Cycles::new(1.0e6 + (i % 7) as f64 * 1.0e6),
                    )
                })
                .collect(),
        )
        .expect("non-empty set");
        let scheme = Scheme::BoundedAuto(4);
        let mut ws = Workspace::new();
        for _ in 0..8 {
            let warm = solve_in(&bounded_set, &platform, scheme, &mut ws).unwrap();
            ws.recycle_schedule(warm.into_schedule());
        }
        let after = count_per_iter(ITERS, || {
            let s = solve_in(&bounded_set, &platform, scheme, &mut ws).unwrap();
            std::hint::black_box(&s);
            ws.recycle_schedule(s.into_schedule());
        });
        report(
            &format!("solve_in/BoundedAuto->{tier} n={n} (warmed workspace)"),
            after,
        );
        assert_eq!(
            after.0, 0.0,
            "bounded tier {tier} (n = {n}) must be allocation-free on the \
             warmed workspace path (got {} allocs/trial)",
            after.0
        );
    }
    println!();

    // The federated DAG lean path: LPT packing, window chopping, one
    // analytic solve per busy core and the merged repricing, all through
    // the workspace pools. With one task per core the per-core solves
    // route to the (asserted-zero above) common-release scheme, so this
    // case pins the federated scaffolding itself at zero.
    {
        let deadline = Time::from_millis(400.0);
        let federated_set = |n: usize| {
            TaskSet::new(
                (0..n)
                    .map(|i| {
                        sdem_types::Task::new(
                            i,
                            Time::ZERO,
                            deadline,
                            sdem_types::Cycles::new(2.0e6 + (i % 5) as f64 * 1.0e6),
                        )
                    })
                    .collect(),
            )
            .expect("non-empty set")
        };
        let measure = |set: &TaskSet, cores: usize| {
            let scheme = Scheme::DagFederated(cores);
            let mut ws = Workspace::new();
            for _ in 0..8 {
                let warm = solve_in(set, &platform, scheme, &mut ws).unwrap();
                ws.recycle_schedule(warm.into_schedule());
            }
            count_per_iter(ITERS, || {
                let s = solve_in(set, &platform, scheme, &mut ws).unwrap();
                std::hint::black_box(&s);
                ws.recycle_schedule(s.into_schedule());
            })
        };
        let scaffold = measure(&federated_set(24), 24);
        report(
            "solve_in/DagFederated(24) n=24 (warmed workspace)",
            scaffold,
        );
        assert_eq!(
            scaffold.0, 0.0,
            "the federated scaffolding (pack + chop + merge + reprice) must \
             be allocation-free on the warmed workspace path (got {} \
             allocs/trial)",
            scaffold.0
        );
        // Multi-task cores chop sequential windows, which route the
        // per-core solves to the agreeable DP — not yet pool-backed, so
        // this row is informational (tracks the DP's heap traffic).
        let chopped = measure(&federated_set(24), 4);
        report(
            "solve_in/DagFederated(4) n=24 (warmed, agreeable DP)",
            chopped,
        );
    }
    println!();

    let before = count_per_iter(ITERS, || {
        std::hint::black_box(
            run_trial_with_oracle(&sporadic_set, &platform, paper::NUM_CORES, None).unwrap(),
        );
    });
    report("sweep_trial (allocating)", before);

    let mut ws = Workspace::new();
    for _ in 0..8 {
        let _ = run_trial_with_oracle_in(&sporadic_set, &platform, paper::NUM_CORES, None, &mut ws);
    }
    let after = count_per_iter(ITERS, || {
        std::hint::black_box(
            run_trial_with_oracle_in(&sporadic_set, &platform, paper::NUM_CORES, None, &mut ws)
                .unwrap(),
        );
    });
    report("sweep_trial (warmed workspace)", after);
    assert_eq!(
        after.0, 0.0,
        "the full sweep trial (SDEM-ON + MBKP + four meters + report) must \
         be allocation-free on the warmed workspace path (got {} \
         allocs/trial, {} B/trial)",
        after.0, after.1
    );

    // Every solver, meter and sweep path above is instrumented with
    // sdem-obs, so all the numbers measured so far already pin the
    // *disabled* path: one relaxed atomic load per site, no clock reads,
    // no heap traffic. Make that explicit, then show the armed metrics
    // registry adds zero allocations too — recording is atomics into
    // static slots (only the opt-in trace sink allocates, and it stays
    // off here).
    assert!(
        !sdem_obs::registry::enabled() && !sdem_obs::trace::enabled(),
        "the baseline cases must run with observability disabled"
    );
    sdem_obs::registry::reset();
    sdem_obs::registry::set_enabled(true);
    // One warm-up pass registers the histogram label slots.
    let _ = run_trial_with_oracle_in(&sporadic_set, &platform, paper::NUM_CORES, None, &mut ws);
    let metered = count_per_iter(ITERS, || {
        std::hint::black_box(
            run_trial_with_oracle_in(&sporadic_set, &platform, paper::NUM_CORES, None, &mut ws)
                .unwrap(),
        );
    });
    sdem_obs::registry::set_enabled(false);
    report("sweep_trial (warmed workspace, metrics armed)", metered);
    // The warmed baseline is exactly zero, so allow only noise headroom —
    // anything the registry allocated per record would overshoot this by
    // orders of magnitude (a trial records 4+ histogram samples and 10
    // counters).
    assert!(
        metered.0 <= after.0 + 0.5,
        "arming the metrics registry must not add heap traffic \
         ({} vs {} allocs/trial)",
        metered.0,
        after.0
    );
}
