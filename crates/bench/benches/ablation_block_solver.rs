//! Ablation (DESIGN.md): the agreeable-deadline block solvers. The
//! production solver is one jointly-convex minimization; the paper's
//! Algorithm 1 decomposes into `(i, j)` cells with the five-step iterative
//! scheme; the grid oracle brute-forces the same optimum. All three agree
//! (asserted in tests); this bench shows their cost gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdem_core::agreeable::{single_block_oracle, solve_single_block, BlockSolverKind};
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_types::Time;
use sdem_types::Watts;
use sdem_workload::synthetic::{agreeable, SyntheticConfig};

fn bench_block_solvers(c: &mut Criterion) {
    let platform = Platform::paper_defaults();
    let mut group = c.benchmark_group("ablation_block_solver");
    group.sample_size(10);
    for n in [2usize, 6, 12] {
        let cfg = SyntheticConfig::paper(n, Time::from_millis(40.0));
        let tasks = agreeable(&cfg, 77);
        group.bench_with_input(BenchmarkId::new("best_response", n), &tasks, |b, t| {
            b.iter(|| solve_single_block(t, &platform, BlockSolverKind::BestResponse).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("paper_iterative", n), &tasks, |b, t| {
            b.iter(|| solve_single_block(t, &platform, BlockSolverKind::PaperIterative).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("grid_oracle_100", n), &tasks, |b, t| {
            b.iter(|| single_block_oracle(t, &platform, 100).unwrap())
        });
        // The Lemma-3 closed forms need the α = 0 model.
        let alpha_zero = Platform::new(
            CorePower::from_paper_units(0.0, 2.53e-7, 3.0, 700.0, 1900.0),
            MemoryPower::new(Watts::new(4.0)),
        );
        group.bench_with_input(BenchmarkId::new("paper_closed_form", n), &tasks, |b, t| {
            b.iter(|| solve_single_block(t, &alpha_zero, BlockSolverKind::PaperClosedForm).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_solvers);
criterion_main!(benches);
