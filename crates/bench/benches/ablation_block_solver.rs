//! Ablation (DESIGN.md): the agreeable-deadline block solvers. The
//! production solver is one jointly-convex minimization; the paper's
//! Algorithm 1 decomposes into `(i, j)` cells with the five-step iterative
//! scheme; the grid oracle brute-forces the same optimum. All three agree
//! (asserted in tests); this bench shows their cost gap.

use sdem_bench::microbench::bench;
use sdem_core::agreeable::{single_block_oracle, solve_single_block, BlockSolverKind};
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_types::Time;
use sdem_types::Watts;
use sdem_workload::synthetic::{agreeable, SyntheticConfig};

fn main() {
    let platform = Platform::paper_defaults();
    // The Lemma-3 closed forms need the α = 0 model.
    let alpha_zero = Platform::new(
        CorePower::from_paper_units(0.0, 2.53e-7, 3.0, 700.0, 1900.0),
        MemoryPower::new(Watts::new(4.0)),
    );
    for n in [2usize, 6, 12] {
        let cfg = SyntheticConfig::paper(n, Time::from_millis(40.0));
        let tasks = agreeable(&cfg, 77);
        bench(&format!("ablation_block_solver/best_response/{n}"), || {
            solve_single_block(&tasks, &platform, BlockSolverKind::BestResponse).unwrap()
        });
        bench(
            &format!("ablation_block_solver/paper_iterative/{n}"),
            || solve_single_block(&tasks, &platform, BlockSolverKind::PaperIterative).unwrap(),
        );
        bench(
            &format!("ablation_block_solver/grid_oracle_100/{n}"),
            || single_block_oracle(&tasks, &platform, 100).unwrap(),
        );
        bench(
            &format!("ablation_block_solver/paper_closed_form/{n}"),
            || solve_single_block(&tasks, &alpha_zero, BlockSolverKind::PaperClosedForm).unwrap(),
        );
    }
}
