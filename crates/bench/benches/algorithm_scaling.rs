//! Runtime scaling of every SDEM scheme against the task count, matching
//! the complexity claims of the paper's Table 1: §4.1 `O(n log n)`, §4.2
//! `O(n²)`, the agreeable DP `O(n⁴)`/`O(n⁵)`, and the per-arrival cost of
//! SDEM-ON.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdem_core::discrete::{quantize_schedule, SpeedLevels};
use sdem_core::{agreeable, bounded, common_release, online, overhead};
use sdem_power::Platform;
use sdem_types::Time;
use sdem_workload::synthetic::{self, SyntheticConfig};

fn cfg(n: usize) -> SyntheticConfig {
    SyntheticConfig::paper(n, Time::from_millis(200.0))
}

fn bench_common_release(c: &mut Criterion) {
    let platform = Platform::paper_defaults();
    let mut group = c.benchmark_group("common_release");
    for n in [8usize, 32, 128, 512] {
        let tasks = synthetic::common_release(&cfg(n), 11);
        group.bench_with_input(BenchmarkId::new("alpha_zero_4_1", n), &tasks, |b, t| {
            b.iter(|| common_release::schedule_alpha_zero(t, &platform).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("alpha_nonzero_4_2", n), &tasks, |b, t| {
            b.iter(|| common_release::schedule_alpha_nonzero(t, &platform).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("overhead_7", n), &tasks, |b, t| {
            b.iter(|| overhead::schedule_common_release(t, &platform).unwrap())
        });
    }
    group.finish();
}

fn bench_agreeable(c: &mut Criterion) {
    let platform = Platform::paper_defaults();
    let mut group = c.benchmark_group("agreeable_dp");
    group.sample_size(10);
    for n in [4usize, 8, 16, 24] {
        let tasks = synthetic::agreeable(&cfg(n), 23);
        group.bench_with_input(BenchmarkId::new("best_response", n), &tasks, |b, t| {
            b.iter(|| {
                agreeable::schedule_with_solver(
                    t,
                    &platform,
                    agreeable::BlockSolverKind::BestResponse,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let platform = Platform::paper_defaults();
    let mut group = c.benchmark_group("online_sdem_on");
    group.sample_size(20);
    for n in [16usize, 64, 256] {
        let tasks = synthetic::sporadic(&cfg(n), 31);
        group.bench_with_input(BenchmarkId::new("schedule_online", n), &tasks, |b, t| {
            b.iter(|| online::schedule_online(t, &platform).unwrap())
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let platform = Platform::paper_defaults();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(20);

    // Discrete quantization of an online schedule.
    let tasks = synthetic::sporadic(&cfg(64), 5);
    let sched = online::schedule_online(&tasks, &platform).unwrap();
    let table = SpeedLevels::evenly_spaced(platform.core(), 16);
    group.bench_function("quantize_64_tasks_16_levels", |b| {
        b.iter(|| quantize_schedule(&sched, &table).unwrap())
    });

    // Bounded-core: exact enumeration vs LPT.
    let small = synthetic::common_release(&cfg(10), 9);
    let common_deadline = sdem_types::TaskSet::new(
        small
            .iter()
            .map(|t| {
                sdem_types::Task::new(t.id().0, Time::ZERO, Time::from_millis(200.0), t.work())
            })
            .collect(),
    )
    .unwrap();
    group.bench_function("bounded_exact_n10_c3", |b| {
        b.iter(|| bounded::solve_exact(&common_deadline, &platform, 3).unwrap())
    });
    group.bench_function("bounded_lpt_n10_c3", |b| {
        b.iter(|| bounded::solve_lpt(&common_deadline, &platform, 3).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_common_release,
    bench_agreeable,
    bench_online,
    bench_extensions
);
criterion_main!(benches);
