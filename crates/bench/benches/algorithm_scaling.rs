//! Runtime scaling of every SDEM scheme against the task count, matching
//! the complexity claims of the paper's Table 1: §4.1 `O(n log n)`, §4.2
//! `O(n²)`, the agreeable DP `O(n⁴)`/`O(n⁵)`, and the per-arrival cost of
//! SDEM-ON.

use sdem_bench::microbench::bench;
use sdem_core::discrete::{quantize_schedule, SpeedLevels};
use sdem_core::{agreeable, solve, Scheme};
use sdem_power::Platform;
use sdem_types::Time;
use sdem_workload::synthetic::{self, SyntheticConfig};

fn cfg(n: usize) -> SyntheticConfig {
    SyntheticConfig::paper(n, Time::from_millis(200.0))
}

fn bench_common_release(platform: &Platform) {
    for n in [8usize, 32, 128, 512] {
        let tasks = synthetic::common_release(&cfg(n), 11);
        bench(&format!("common_release/alpha_zero_4_1/{n}"), || {
            solve(&tasks, platform, Scheme::CommonReleaseAlphaZero).unwrap()
        });
        bench(&format!("common_release/alpha_nonzero_4_2/{n}"), || {
            solve(&tasks, platform, Scheme::CommonReleaseAlphaNonzero).unwrap()
        });
        bench(&format!("common_release/overhead_7/{n}"), || {
            solve(&tasks, platform, Scheme::CommonReleaseOverhead).unwrap()
        });
    }
}

fn bench_agreeable(platform: &Platform) {
    for n in [4usize, 8, 16, 24] {
        let tasks = synthetic::agreeable(&cfg(n), 23);
        bench(&format!("agreeable_dp/best_response/{n}"), || {
            agreeable::schedule_with_solver(
                &tasks,
                platform,
                agreeable::BlockSolverKind::BestResponse,
            )
            .unwrap()
        });
    }
}

fn bench_online(platform: &Platform) {
    for n in [16usize, 64, 256] {
        let tasks = synthetic::sporadic(&cfg(n), 31);
        bench(&format!("online_sdem_on/schedule_online/{n}"), || {
            solve(&tasks, platform, Scheme::Online).unwrap()
        });
    }
}

fn bench_extensions(platform: &Platform) {
    // Discrete quantization of an online schedule.
    let tasks = synthetic::sporadic(&cfg(64), 5);
    let sched = solve(&tasks, platform, Scheme::Online)
        .unwrap()
        .into_schedule();
    let table = SpeedLevels::evenly_spaced(platform.core(), 16);
    bench("extensions/quantize_64_tasks_16_levels", || {
        quantize_schedule(&sched, &table).unwrap()
    });

    // Bounded-core: exact enumeration vs LPT.
    let small = synthetic::common_release(&cfg(10), 9);
    let common_deadline = sdem_types::TaskSet::new(
        small
            .iter()
            .map(|t| {
                sdem_types::Task::new(t.id().0, Time::ZERO, Time::from_millis(200.0), t.work())
            })
            .collect(),
    )
    .unwrap();
    bench("extensions/bounded_exact_n10_c3", || {
        solve(&common_deadline, platform, Scheme::BoundedExact(3)).unwrap()
    });
    bench("extensions/bounded_lpt_n10_c3", || {
        solve(&common_deadline, platform, Scheme::BoundedLpt(3)).unwrap()
    });
}

fn main() {
    let platform = Platform::paper_defaults();
    bench_common_release(&platform);
    bench_agreeable(&platform);
    bench_online(&platform);
    bench_extensions(&platform);
}
