//! Per-call vs batched interval kernels over k sets.
//!
//! The meters fold union/gaps over one interval set per core; the batched
//! kernels ([`IntervalSet::union_many_into`],
//! [`IntervalSet::intersect_many_into`], [`IntervalSet::gaps_many_into`])
//! do the same work in one pass over all k sets. This bench measures both
//! shapes at k ∈ {4, 16, 64} sets (each holding a fixed number of
//! intervals), with all scratch pre-allocated, so the delta is pure
//! kernel cost — the shape the zero-alloc sweep path sees.

use sdem_bench::microbench::{bench, black_box};
use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem_types::{IntervalSet, Time};

const INTERVALS_PER_SET: usize = 12;

/// A sparse set: short spans scattered over a window that grows with the
/// total interval count, so the k-way union stays fragmented (like
/// per-core busy sets) instead of collapsing to one long interval.
fn sparse_set(seed: u64, window: f64) -> IntervalSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    IntervalSet::from_spans(
        (0..INTERVALS_PER_SET)
            .map(|_| {
                let start = rng.gen_range(0.0f64..window);
                let len = rng.gen_range(0.1f64..2.0);
                (Time::from_secs(start), Time::from_secs(start + len))
            })
            .collect(),
    )
}

/// A high-coverage set: the window minus a few short gaps, so the k-way
/// intersection stays non-trivial all the way down.
fn dense_set(seed: u64, window: f64) -> IntervalSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut gaps: Vec<f64> = (0..INTERVALS_PER_SET)
        .map(|_| rng.gen_range(1.0f64..window - 1.0))
        .collect();
    gaps.sort_by(f64::total_cmp);
    let mut spans = Vec::new();
    let mut cursor = 0.0;
    for g in gaps {
        if g > cursor {
            spans.push((Time::from_secs(cursor), Time::from_secs(g)));
        }
        cursor = g + 0.05;
    }
    spans.push((Time::from_secs(cursor), Time::from_secs(window)));
    IntervalSet::from_spans(spans)
}

fn main() {
    let empty = IntervalSet::new();
    for k in [4usize, 16, 64] {
        let window = (k * INTERVALS_PER_SET) as f64 * 4.0;
        let sets: Vec<IntervalSet> = (0..k)
            .map(|i| sparse_set(0xC0DE + i as u64, window))
            .collect();
        let dense: Vec<IntervalSet> = (0..k)
            .map(|i| dense_set(0xDE5E + i as u64, window))
            .collect();
        let horizon = Some((Time::from_secs(-1.0), Time::from_secs(window + 1.0)));

        // union: fold of pairwise union_into over ping-pong scratch vs the
        // one-pass concatenate-and-normalize kernel.
        let mut ping = IntervalSet::new();
        let mut pong = IntervalSet::new();
        bench(&format!("batched_interval_kernel/union_fold/{k}"), || {
            ping.clear();
            let (mut cur, mut nxt) = (&mut ping, &mut pong);
            for set in black_box(&sets) {
                set.union_into(cur, nxt);
                std::mem::swap(&mut cur, &mut nxt);
            }
            black_box(cur.len())
        });
        let mut out = IntervalSet::new();
        bench(&format!("batched_interval_kernel/union_many/{k}"), || {
            IntervalSet::union_many_into(black_box(&sets), &mut out);
            black_box(out.len())
        });

        // intersect: pairwise fold vs the k-pointer sweep, on
        // high-coverage sets so the running intersection never collapses.
        bench(
            &format!("batched_interval_kernel/intersect_fold/{k}"),
            || {
                dense[0].union_into(&empty, &mut ping);
                let (mut cur, mut nxt) = (&mut ping, &mut pong);
                for set in black_box(&dense[1..]) {
                    set.intersect_into(cur, nxt);
                    std::mem::swap(&mut cur, &mut nxt);
                }
                black_box(cur.len())
            },
        );
        let mut cursors = Vec::new();
        bench(
            &format!("batched_interval_kernel/intersect_many/{k}"),
            || {
                IntervalSet::intersect_many_into(black_box(&dense), &mut cursors, &mut out);
                black_box(out.len())
            },
        );

        // gaps: one gaps_into call per set vs the flattened batch.
        let mut gaps = IntervalSet::new();
        bench(&format!("batched_interval_kernel/gaps_per_set/{k}"), || {
            let mut total = 0usize;
            for set in black_box(&sets) {
                set.gaps_into(horizon, &mut gaps);
                total += gaps.len();
            }
            black_box(total)
        });
        let mut flat = Vec::new();
        let mut offsets = Vec::new();
        bench(&format!("batched_interval_kernel/gaps_many/{k}"), || {
            IntervalSet::gaps_many_into(black_box(&sets), horizon, &mut flat, &mut offsets);
            black_box(flat.len())
        });
        println!();
    }
}
