//! Ablation (DESIGN.md): the three §4.1 drivers — exhaustive case scan,
//! the paper's Theorem-2 sequential scan, and the Lemma-1 binary search —
//! compute the same optimum; this bench quantifies what the binary search
//! buys as `n` grows.

use sdem_bench::microbench::bench;
use sdem_core::common_release::{schedule_alpha_zero_binary_search, schedule_alpha_zero_scan};
use sdem_core::{solve, Scheme};
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_types::{Time, Watts};
use sdem_workload::synthetic::{common_release, SyntheticConfig};

fn main() {
    // α = 0 platform (the §4.1 model).
    let platform = Platform::new(
        CorePower::from_paper_units(0.0, 2.53e-7, 3.0, 700.0, 1900.0),
        MemoryPower::new(Watts::new(4.0)),
    );
    for n in [16usize, 128, 1024] {
        let cfg = SyntheticConfig::paper(n, Time::from_millis(100.0));
        let tasks = common_release(&cfg, 5);
        bench(&format!("ablation_4_1_drivers/exhaustive/{n}"), || {
            solve(&tasks, &platform, Scheme::CommonReleaseAlphaZero).unwrap()
        });
        bench(&format!("ablation_4_1_drivers/theorem2_scan/{n}"), || {
            schedule_alpha_zero_scan(&tasks, &platform).unwrap()
        });
        bench(
            &format!("ablation_4_1_drivers/lemma1_binary_search/{n}"),
            || schedule_alpha_zero_binary_search(&tasks, &platform).unwrap(),
        );
    }
}
