//! Regenerates Fig. 7a: system-wide energy-saving improvement of SDEM-ON
//! over MBKPS across memory static powers `α_m ∈ {1..8} W` and utilization
//! levels `x ∈ {100..800} ms` (synthetic tasks, Table 4 grid).

use sdem_bench::figures::{self, fig7a_with, format_fig7};
use sdem_bench::runner_from_env;
use sdem_workload::paper;

fn main() {
    let tasks = std::env::var("SDEM_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60usize);
    let trials = std::env::var("SDEM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(paper::TRIALS_PER_POINT);
    let metrics_path = std::env::var("SDEM_METRICS").ok();
    if metrics_path.is_some() {
        sdem_obs::registry::reset();
        sdem_obs::registry::set_enabled(true);
    }
    println!("Fig. 7a — SDEM-ON improvement over MBKPS, α_m sweep (ξ_m = {} ms), {tasks} tasks, {trials} trials/point  (paper average: 9.74%)\n", paper::DEFAULT_XI_M_MS);
    let (cells, stats) = fig7a_with(tasks, trials, &runner_from_env());
    eprintln!("sweep: {stats}\n");
    print!("{}", format_fig7(&cells, "alpha_m[W]"));
    if let Some(path) = metrics_path {
        sdem_obs::registry::set_enabled(false);
        let snapshot = sdem_obs::registry::snapshot();
        std::fs::write(&path, snapshot.to_json()).expect("write metrics");
        // Surface the per-trial latency percentiles on stderr so
        // `update_bench.sh`-style harnesses can scrape them alongside
        // the trials/s line above.
        for (label, h) in &snapshot.histograms {
            eprintln!(
                "metrics: {label} p50<={} p90<={} p99<={} max={} ns (n={})",
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max(),
                h.count()
            );
        }
        eprintln!("metrics: wrote {path}");
    }

    if let Ok(prefix) = std::env::var("SDEM_SVG") {
        use sdem_bench::plot::{line_chart, ChartOptions, Series};
        let mut params: Vec<f64> = cells.iter().map(|c| c.param).collect();
        params.dedup();
        let series: Vec<Series> = params
            .iter()
            .map(|&p| Series {
                label: format!("alpha_m [W] = {p}"),
                points: cells
                    .iter()
                    .filter(|c| c.param == p)
                    .map(|c| (c.x_ms, c.improvement))
                    .collect(),
            })
            .collect();
        let svg = line_chart(
            &series,
            &ChartOptions {
                title: "SDEM-ON improvement over MBKPS".into(),
                x_label: "max inter-arrival x [ms]".into(),
                y_label: "improvement".into(),
                width: 760,
                height: 480,
            },
        );
        std::fs::write(format!("{prefix}.svg"), svg).expect("write SVG");
        eprintln!("wrote {prefix}.svg");
    }
    if let Ok(path) = std::env::var("SDEM_CSV") {
        std::fs::write(&path, figures::fig7_to_csv(&cells, "alpha_m_w")).expect("write CSV");
        eprintln!("wrote CSV to {path}");
    }
}
