//! Energy vs core budget for the DAG federated extension: seeded DAG
//! suites solved end to end by `sdem_core::dag::solve_dags_in`, every
//! cell cross-checked against the sim-oracle meter.
//!
//! Environment:
//!
//! * `SDEM_SUITES` / `SDEM_DAGS` / `SDEM_NODES` — grid shape (defaults
//!   3 suites × 4 nine-node DAGs, the committed golden configuration);
//! * `SDEM_CSV=FILE` — also write the rows as CSV;
//! * `SDEM_BENCH_OUT=FILE` — also write a `BENCH_dag.json`-style report
//!   (`SDEM_BENCH_DATE` stamps it);
//! * `SDEM_THREADS` — worker count (output is identical at any value).

use sdem_bench::figures::{dag_energy_to_csv, dag_energy_with, DagSweepConfig};
use sdem_bench::runner_from_env;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut config = DagSweepConfig::paper();
    config.suites = env_usize("SDEM_SUITES", config.suites);
    config.dags_per_suite = env_usize("SDEM_DAGS", config.dags_per_suite);
    config.nodes = env_usize("SDEM_NODES", config.nodes);

    println!(
        "DAG federated sweep — {} suites × {} DAGs × {} nodes, {:.0} ms frame, cores {:?}",
        config.suites,
        config.dags_per_suite,
        config.nodes,
        config.frame.as_millis(),
        config.cores
    );

    let (rows, stats) = dag_energy_with(&config, &runner_from_env());
    eprintln!("sweep: {stats}\n");

    println!(
        "{:>5} {:>5} {:>9} {:>12} {:>10} {:>8} {:>10}",
        "suite", "cores", "feasible", "energy_j", "sleep_ms", "clusters", "cores_used"
    );
    for r in &rows {
        println!(
            "{:>5} {:>5} {:>9} {:>12.6} {:>10.3} {:>8} {:>10}",
            r.suite, r.cores, r.feasible, r.energy_j, r.memory_sleep_ms, r.clusters, r.cores_used
        );
    }

    if let Ok(path) = std::env::var("SDEM_CSV") {
        std::fs::write(&path, dag_energy_to_csv(&rows)).expect("write CSV");
        eprintln!("wrote CSV to {path}");
    }

    let Ok(out) = std::env::var("SDEM_BENCH_OUT") else {
        return;
    };
    let date = std::env::var("SDEM_BENCH_DATE").unwrap_or_else(|_| "unknown".to_string());
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!(
        "  \"benchmark\": \"DAG federated energy vs core budget ({} seeded suites of {} {}-node DAGs, {:.0} ms frame)\",\n",
        config.suites,
        config.dags_per_suite,
        config.nodes,
        config.frame.as_millis()
    ));
    body.push_str(
        "  \"command\": \"SDEM_BENCH_OUT=BENCH_dag.json cargo run -p sdem-bench --release --bin dag_energy\",\n",
    );
    body.push_str(&format!("  \"date\": \"{date}\",\n"));
    body.push_str("  \"host\": {\n");
    body.push_str("    \"os\": \"Linux 6.18.5\",\n");
    body.push_str(&format!(
        "    \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    body.push_str("    \"note\": \"every feasible cell is re-priced by the interval sim-meter and the run aborts on divergence, so each energy value is oracle-verified, not just predicted. Rows are bit-identical at any SDEM_THREADS.\"\n");
    body.push_str("  },\n");
    body.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        body.push_str(&format!(
            "    {{ \"suite\": {}, \"seed\": {}, \"cores\": {}, \"feasible\": {}, \"energy_j\": {:.9}, \"memory_sleep_ms\": {:.6}, \"clusters\": {}, \"cores_used\": {} }}{sep}\n",
            r.suite,
            r.seed,
            r.cores,
            r.feasible,
            r.energy_j,
            r.memory_sleep_ms,
            r.clusters,
            r.cores_used
        ));
    }
    body.push_str("  ]\n");
    body.push_str("}\n");
    std::fs::write(&out, body).expect("write BENCH_dag report");
    eprintln!("dag_energy: wrote {out}");
}
