//! Ablation for the two baseline-modelling decisions documented in
//! DESIGN.md (deviation 2):
//!
//! 1. **MBKPS pricing** — opportunistic (sleep gaps ≥ ξ_m, the shipped
//!    model) vs literal always-sleep (pay a round trip on every gap);
//! 2. **DVS floor** — clamping the baselines' dispatch speeds to the
//!    platform's 700 MHz minimum vs letting OA crawl arbitrarily slowly.
//!
//! The output shows why the shipped choices are the ones that make the
//! paper's comparison meaningful: literal always-sleep drives MBKPS far
//! *below* MBKP (contradicting the paper's plots), and removing the floor
//! inflates SDEM-ON's advantage implausibly.
//!
//! Usage: `cargo run -p sdem-bench --release --bin ablation_baselines`

use sdem_baselines::mbkp::{self, Assignment};
use sdem_bench::experiment::MAX_ATTEMPTS_PER_TRIAL;
use sdem_bench::runner_from_env;
use sdem_bench::stats::summarize;
use sdem_core::{solve, Scheme, Solution};
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_sim::{simulate_with_options, SimOptions, SleepPolicy};
use sdem_types::{Time, Watts};
use sdem_workload::dspstone::{stream, Benchmark};
use sdem_workload::paper;

fn main() {
    let trials: u64 = std::env::var("SDEM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    // High-utilization DSPstone workload (U = 2, 8 streams): common idle
    // gaps are short relative to ξ_m, which is where the modelling
    // decisions bite.
    let benches = [
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
    ];
    let make_tasks = |seed: u64| stream(&benches, 2.0, 15, seed);

    let floored = Platform::paper_defaults().with_memory(
        MemoryPower::new(Watts::new(paper::DEFAULT_ALPHA_M_W))
            .with_break_even(Time::from_millis(paper::DEFAULT_XI_M_MS)),
    );
    // Identical platform but with the DVS floor removed (min speed ~0).
    let unfloored = floored.with_core(CorePower::from_paper_units(
        310.0, 2.53e-7, 3.0, 1e-6, 1900.0,
    ));

    println!(
        "ablation: DSPstone U = 2 (high utilization), 8 streams × 15 instances, {} cores, {trials} trials\n",
        paper::NUM_CORES
    );
    println!(
        "{:44} {:>12} {:>12}",
        "variant", "E/MBKP mean", "(min..max)"
    );

    let variants = [
        (
            "MBKPS, opportunistic sleep (shipped)",
            &floored,
            SleepPolicy::WhenProfitable,
        ),
        (
            "MBKPS, literal always-sleep",
            &floored,
            SleepPolicy::AlwaysSleep,
        ),
        (
            "SDEM-ON, with 700 MHz floor (shipped)",
            &floored,
            SleepPolicy::WhenProfitable,
        ),
        (
            "SDEM-ON, baselines unfloored",
            &unfloored,
            SleepPolicy::WhenProfitable,
        ),
    ];
    // One grid point per variant, `trials` replicates each; every
    // replicate resamples from its private seed stream until feasible.
    let outcome = runner_from_env().run(&variants, trials as usize, 0xAB1A, |v, ctx| {
        let (name, platform, policy) = *v;
        ctx.seeds().take(MAX_ATTEMPTS_PER_TRIAL).find_map(|seed| {
            let tasks = make_tasks(seed);
            let mbkp_schedule =
                mbkp::schedule_online(&tasks, platform, paper::NUM_CORES, Assignment::RoundRobin)
                    .ok()?;
            let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
            let never = SimOptions {
                memory_policy: SleepPolicy::NeverSleep,
                ..profit
            };
            let e_mbkp = simulate_with_options(&mbkp_schedule, &tasks, platform, never)
                .expect("valid schedule")
                .total()
                .value();
            let subject = if name.starts_with("SDEM-ON") {
                let s = solve(&tasks, platform, Scheme::Online)
                    .map(Solution::into_schedule)
                    .ok()?;
                simulate_with_options(&s, &tasks, platform, profit)
                    .expect("valid schedule")
                    .total()
                    .value()
            } else {
                let opts = SimOptions {
                    memory_policy: policy,
                    ..profit
                };
                simulate_with_options(&mbkp_schedule, &tasks, platform, opts)
                    .expect("valid schedule")
                    .total()
                    .value()
            };
            Some(subject / e_mbkp)
        })
    });
    for ((name, _, _), ratios) in variants.iter().zip(&outcome.per_point) {
        let s = summarize(ratios);
        println!("{:44} {:>12.3} ({:.3}..{:.3})", name, s.mean, s.min, s.max);
    }
    eprintln!("\nsweep: {}", outcome.stats);
    println!(
        "\nreading: ratios are energies relative to MBKP (never-sleep); > 1 means\n\
         worse than never sleeping at all. Literal always-sleep pays a round trip\n\
         on every short gap; removing the DVS floor lets the baselines crawl,\n\
         stretching MBKP's busy time and flattering SDEM-ON's relative numbers —\n\
         both distort the comparison the paper reports, hence the shipped choices."
    );
}
