//! Empirical competitive-ratio study for SDEM-ON (beyond the paper's
//! evaluation): on *agreeable-deadline* instances the §5 DP is provably
//! optimal, so `E_online / E_offline-optimal` measures how much the online
//! heuristic gives up for not knowing the future.
//!
//! Usage: `cargo run -p sdem-bench --release --bin competitive`
//! (env overrides: `SDEM_TASKS`, `SDEM_SEEDS`, `SDEM_X_MS`).

use sdem_bench::runner_from_env;
use sdem_bench::stats::{percentile, summarize};
use sdem_core::{solve, Scheme, Solution};
use sdem_power::Platform;
use sdem_sim::{simulate_with_options, SimOptions, SleepPolicy};
use sdem_types::Time;
use sdem_workload::synthetic::{self, SyntheticConfig};

fn main() {
    let tasks_n: usize = std::env::var("SDEM_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let seeds: u64 = std::env::var("SDEM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let x_ms: f64 = std::env::var("SDEM_X_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200.0);

    let platform = Platform::paper_defaults();
    let cfg = SyntheticConfig::paper(tasks_n, Time::from_millis(x_ms));
    let opts = SimOptions::uniform(SleepPolicy::WhenProfitable);

    // One replicate per seed, fanned across workers; infeasible seeds are
    // skipped, exactly as in a serial `0..seeds` loop.
    let outcome = runner_from_env().run(&[()], seeds as usize, 0, |_, ctx| {
        let seed = ctx.replicate() as u64;
        let tasks = synthetic::agreeable(&cfg, seed);
        let online_sched = solve(&tasks, &platform, Scheme::Online)
            .map(Solution::into_schedule)
            .ok()?;
        let offline = solve(&tasks, &platform, Scheme::Agreeable).ok()?;
        let e_on = simulate_with_options(&online_sched, &tasks, &platform, opts)
            .expect("online schedule validates")
            .total()
            .value();
        let e_off = simulate_with_options(offline.schedule(), &tasks, &platform, opts)
            .expect("offline schedule validates")
            .total()
            .value();
        Some(e_on / e_off)
    });
    let ratios = outcome.per_point.into_iter().next().unwrap_or_default();
    eprintln!("sweep: {}", outcome.stats);

    let s = summarize(&ratios);
    println!(
        "SDEM-ON vs offline-optimal (agreeable DP), {} instances of {} tasks, x = {} ms",
        s.n, tasks_n, x_ms
    );
    println!(
        "competitive ratio: mean {:.4} ± {:.4}, median {:.4}, p95 {:.4}, worst {:.4}",
        s.mean,
        s.ci95(),
        percentile(&ratios, 0.5),
        percentile(&ratios, 0.95),
        s.max
    );
    if s.min < 1.0 - 1e-6 {
        println!(
            "note: min ratio {:.4} < 1 — the DP optimizes its analytic block model, \
             the simulator prices actual gaps (see DESIGN.md deviation 3)",
            s.min
        );
    }
}
