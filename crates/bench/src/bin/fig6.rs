//! Regenerates Fig. 6a (memory static-energy saving) and Fig. 6b
//! (system-wide energy saving) of the paper: FFT-1024 + matrix-multiply
//! benchmark streams over the utilization grid `U ∈ {2..9}`.

use sdem_bench::figures::{self, fig6_with};
use sdem_bench::runner_from_env;
use sdem_workload::paper;

fn main() {
    let instances = std::env::var("SDEM_INSTANCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30usize);
    let trials = std::env::var("SDEM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(paper::TRIALS_PER_POINT);

    println!(
        "Fig. 6 — DSPstone FFT-1024 + MatMul, {instances} instances/stream, {trials} trials/point"
    );
    println!(
        "platform: Cortex-A57 ×{}, α_m = {} W, ξ_m = {} ms (Table 4 defaults)\n",
        paper::NUM_CORES,
        paper::DEFAULT_ALPHA_M_W,
        paper::DEFAULT_XI_M_MS
    );

    let (rows, stats) = fig6_with(instances, trials, &runner_from_env());
    eprintln!("sweep: {stats}\n");

    println!("Fig. 6a — memory static-energy saving vs MBKP");
    println!("{:>4} {:>12} {:>12}", "U", "SDEM-ON", "MBKPS");
    for r in &rows {
        println!(
            "{:>4} {:>11.2}% {:>11.2}%",
            r.u,
            r.sdem_memory_saving * 100.0,
            r.mbkps_memory_saving * 100.0
        );
    }
    let mem_gap = rows
        .iter()
        .map(|r| r.sdem_memory_saving - r.mbkps_memory_saving)
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "average memory-saving improvement of SDEM-ON over MBKPS: {:.2}%  (paper: 10.02%)\n",
        mem_gap * 100.0
    );

    println!("Fig. 6b — system-wide energy saving vs MBKP");
    println!("{:>4} {:>12} {:>12}", "U", "SDEM-ON", "MBKPS");
    for r in &rows {
        println!(
            "{:>4} {:>11.2}% {:>11.2}%",
            r.u,
            r.sdem_system_saving * 100.0,
            r.mbkps_system_saving * 100.0
        );
    }
    let sys_gap = rows
        .iter()
        .map(|r| 1.0 - (1.0 - r.sdem_system_saving) / (1.0 - r.mbkps_system_saving))
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "average system-energy saving of SDEM-ON over MBKPS: {:.2}%  (paper: 23.45%)",
        sys_gap * 100.0
    );

    if let Ok(path) = std::env::var("SDEM_CSV") {
        std::fs::write(&path, figures::fig6_to_csv(&rows)).expect("write CSV");
        eprintln!("wrote CSV to {path}");
    }
    if let Ok(prefix) = std::env::var("SDEM_SVG") {
        use sdem_bench::plot::{line_chart, ChartOptions, Series};
        let panel = |title: &str, sdem: Vec<(f64, f64)>, mbkps: Vec<(f64, f64)>| {
            line_chart(
                &[
                    Series {
                        label: "SDEM-ON".into(),
                        points: sdem,
                    },
                    Series {
                        label: "MBKPS".into(),
                        points: mbkps,
                    },
                ],
                &ChartOptions {
                    title: title.into(),
                    x_label: "U (larger = lower utilization)".into(),
                    y_label: "energy saving vs MBKP".into(),
                    ..Default::default()
                },
            )
        };
        let a = panel(
            "Fig. 6a — memory static-energy saving",
            rows.iter().map(|r| (r.u, r.sdem_memory_saving)).collect(),
            rows.iter().map(|r| (r.u, r.mbkps_memory_saving)).collect(),
        );
        let b = panel(
            "Fig. 6b — system-wide energy saving",
            rows.iter().map(|r| (r.u, r.sdem_system_saving)).collect(),
            rows.iter().map(|r| (r.u, r.mbkps_system_saving)).collect(),
        );
        std::fs::write(format!("{prefix}a.svg"), a).expect("write SVG");
        std::fs::write(format!("{prefix}b.svg"), b).expect("write SVG");
        eprintln!("wrote {prefix}a.svg and {prefix}b.svg");
    }
}
