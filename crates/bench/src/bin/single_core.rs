//! Single-core bridge study (beyond the paper's evaluation): on one core
//! the SDEM problem collapses to the system-wide single-processor problem
//! of the paper's related work (Jejurikar–Gupta, Zhong–Xu). This binary
//! compares, on sporadic workloads:
//!
//! * **YDS** — processor-optimal, memory-oblivious;
//! * **CSS** — YDS clamped to the joint critical speed (prior art);
//! * **SDEM-ON (1 core)** — the paper's heuristic with `max_cores = 1`.
//!
//! Expectation: CSS recovers most of the memory savings over YDS, and
//! SDEM-ON adds postponement (consolidating idle into fewer, longer sleeps)
//! on top.
//!
//! Usage: `cargo run -p sdem-bench --release --bin single_core`

use sdem_baselines::{css, yds};
use sdem_bench::experiment::MAX_ATTEMPTS_PER_TRIAL;
use sdem_bench::runner_from_env;
use sdem_bench::stats::summarize;
use sdem_core::{solve, Scheme, Solution};
use sdem_power::Platform;
use sdem_sim::{simulate_with_options, SimOptions, SleepPolicy};
use sdem_types::Time;
use sdem_workload::synthetic::{sporadic, SyntheticConfig};

fn main() {
    // Enough replicates that the CSS-vs-SDEM-ON gap (~0.3 % of E_YDS)
    // clears the confidence interval.
    let trials: usize = std::env::var("SDEM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let tasks_n: usize = std::env::var("SDEM_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    // Sparse arrivals so a single core suffices.
    let x_ms = 800.0;
    let platform = Platform::paper_defaults();
    let cfg = SyntheticConfig::paper(tasks_n, Time::from_millis(x_ms));
    let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);

    // One replicate per trial; each resamples from its private seed
    // stream until all three schedulers accept the instance.
    let outcome = runner_from_env().run(&[()], trials, 0x51C0, |_, ctx| {
        ctx.seeds().take(MAX_ATTEMPTS_PER_TRIAL).find_map(|seed| {
            let tasks = sporadic(&cfg, seed);
            let (Ok(y), Ok(c), Ok(s)) = (
                yds::schedule_single_core(&tasks, &platform),
                css::schedule_single_core_css(&tasks, &platform),
                solve(&tasks, &platform, Scheme::OnlineBounded(1)).map(Solution::into_schedule),
            ) else {
                return None;
            };
            let e = |sched: &sdem_types::Schedule| {
                simulate_with_options(sched, &tasks, &platform, profit)
                    .expect("valid schedule")
                    .total()
                    .value()
            };
            let base = e(&y);
            Some((e(&c) / base, e(&s) / base))
        })
    });
    let feasible = outcome.per_point.into_iter().next().unwrap_or_default();
    eprintln!("sweep: {}", outcome.stats);
    let css_ratio: Vec<f64> = feasible.iter().map(|&(c, _)| c).collect();
    let sdem_ratio: Vec<f64> = feasible.iter().map(|&(_, s)| s).collect();

    println!(
        "single-core study: {tasks_n} sporadic tasks, x = {x_ms} ms, {} feasible trials",
        feasible.len()
    );
    println!("{:28} {:>14}", "scheme", "E / E_YDS");
    println!("{:28} {:>14.3}", "YDS (memory-oblivious)", 1.0);
    let c = summarize(&css_ratio);
    println!(
        "{:28} {:>14.3} (±{:.3})",
        "CSS (prior art)",
        c.mean,
        c.ci95()
    );
    let s = summarize(&sdem_ratio);
    println!(
        "{:28} {:>14.3} (±{:.3})",
        "SDEM-ON, 1 core",
        s.mean,
        s.ci95()
    );
    println!(
        "\nCSS recovers the race-to-idle gain; SDEM-ON's postponement adds\n\
         idle consolidation on top (fewer, longer memory sleeps)."
    );
}
