//! Regenerates Fig. 7b: system-wide energy-saving improvement of SDEM-ON
//! over MBKPS across memory break-even times `ξ_m ∈ {15..70} ms` and
//! utilization levels `x ∈ {100..800} ms` (synthetic tasks, Table 4 grid).

use sdem_bench::figures::{self, fig7b_with, format_fig7};
use sdem_bench::runner_from_env;
use sdem_workload::paper;

fn main() {
    let tasks = std::env::var("SDEM_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60usize);
    let trials = std::env::var("SDEM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(paper::TRIALS_PER_POINT);
    println!("Fig. 7b — SDEM-ON improvement over MBKPS, ξ_m sweep (α_m = {} W), {tasks} tasks, {trials} trials/point  (paper average: 10.52%)\n", paper::DEFAULT_ALPHA_M_W);
    let (cells, stats) = fig7b_with(tasks, trials, &runner_from_env());
    eprintln!("sweep: {stats}\n");
    print!("{}", format_fig7(&cells, "xi_m[ms]"));

    if let Ok(prefix) = std::env::var("SDEM_SVG") {
        use sdem_bench::plot::{line_chart, ChartOptions, Series};
        let mut params: Vec<f64> = cells.iter().map(|c| c.param).collect();
        params.dedup();
        let series: Vec<Series> = params
            .iter()
            .map(|&p| Series {
                label: format!("xi_m [ms] = {p}"),
                points: cells
                    .iter()
                    .filter(|c| c.param == p)
                    .map(|c| (c.x_ms, c.improvement))
                    .collect(),
            })
            .collect();
        let svg = line_chart(
            &series,
            &ChartOptions {
                title: "SDEM-ON improvement over MBKPS".into(),
                x_label: "max inter-arrival x [ms]".into(),
                y_label: "improvement".into(),
                width: 760,
                height: 480,
            },
        );
        std::fs::write(format!("{prefix}.svg"), svg).expect("write SVG");
        eprintln!("wrote {prefix}.svg");
    }
    if let Ok(path) = std::env::var("SDEM_CSV") {
        std::fs::write(&path, figures::fig7_to_csv(&cells, "xi_m_ms")).expect("write CSV");
        eprintln!("wrote CSV to {path}");
    }
}
