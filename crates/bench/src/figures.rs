//! The paper's figure sweeps (Fig. 6a/6b, Fig. 7a, Fig. 7b), fanned
//! across worker threads by [`SweepRunner`] at *trial* granularity.
//! Per-trial deterministic seeding makes every sweep's output identical
//! for any thread count.

use sdem_core::dag::{recycle_dag_report, solve_dags_in};
use sdem_core::{OracleOptions, SdemError};
use sdem_exec::{
    CheckpointJournal, QuarantineRecord, QuarantinedOutcome, SweepError, SweepRunner, SweepStats,
    TrialCtx, TrialFailure,
};
use sdem_power::{MemoryPower, Platform};
use sdem_prng::SplitMix64;
use sdem_types::{Time, Watts, Workspace};
use sdem_workload::dag::{suite as dag_suite, DagConfig};
use sdem_workload::dspstone::{stream, Benchmark};
use sdem_workload::paper;
use sdem_workload::synthetic::{sporadic, SyntheticConfig};

use crate::experiment::{
    decode_trial_result, encode_trial_result, mean, run_trial_quarantined_in,
    run_trial_resampling_in, FaultInjection, TrialResult,
};

/// Grid seed of the Fig. 6 sweep.
pub const FIG6_GRID_SEED: u64 = 0xF16_6000;
/// Grid seed of the Fig. 7a (`α_m × x`) sweep.
pub const FIG7A_GRID_SEED: u64 = 0xF17_A000;
/// Grid seed of the Fig. 7b (`ξ_m × x`) sweep.
pub const FIG7B_GRID_SEED: u64 = 0xF17_B000;

/// One row of Fig. 6 (both panels share the x-axis `U`).
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Utilization scale `U` (larger = lower utilization).
    pub u: f64,
    /// Fig. 6a: memory static-energy saving of SDEM-ON vs MBKP (fraction).
    pub sdem_memory_saving: f64,
    /// Fig. 6a: memory saving of MBKPS vs MBKP.
    pub mbkps_memory_saving: f64,
    /// Fig. 6b: system-wide saving of SDEM-ON vs MBKP.
    pub sdem_system_saving: f64,
    /// Fig. 6b: system-wide saving of MBKPS vs MBKP.
    pub mbkps_system_saving: f64,
}

/// Fig. 6 sweep: FFT-1024 + matrix-multiply streams over the `U` grid,
/// default platform (Table 4 stars), `trials` seeds per point.
///
/// Eight sporadic streams (four of each kernel) populate the eight-core
/// platform, matching §8.1.2's premise that at `U = 2` (high utilization)
/// "all 8 cores are most likely to be used at any time".
pub fn fig6(instances_per_stream: usize, trials: usize) -> Vec<Fig6Row> {
    fig6_with(instances_per_stream, trials, &SweepRunner::new()).0
}

/// [`fig6`] on an explicit [`SweepRunner`], also returning sweep
/// statistics (wall clock, throughput, thread count).
pub fn fig6_with(
    instances_per_stream: usize,
    trials: usize,
    runner: &SweepRunner,
) -> (Vec<Fig6Row>, SweepStats) {
    let platform = Platform::paper_defaults();
    let benches = [
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
    ];
    // Each worker owns one workspace for its whole share of the sweep.
    let outcome = runner.run_with_state(
        &paper::U_POINTS,
        trials,
        FIG6_GRID_SEED,
        Workspace::new,
        |&u, ctx, ws| {
            run_trial_resampling_in(
                |seed| stream(&benches, u, instances_per_stream, seed),
                &platform,
                paper::NUM_CORES,
                ctx,
                ws,
            )
        },
    );
    publish_energy_gauges(&outcome.per_point);
    let rows = paper::U_POINTS
        .iter()
        .zip(&outcome.per_point)
        .map(|(&u, results)| {
            let results = expect_feasible(results);
            Fig6Row {
                u,
                sdem_memory_saving: mean(results, |r| r.sdem_memory_saving_vs_mbkp()),
                mbkps_memory_saving: mean(results, |r| r.mbkps_memory_saving_vs_mbkp()),
                sdem_system_saving: mean(results, |r| r.sdem_system_saving_vs_mbkp()),
                mbkps_system_saving: mean(results, |r| r.mbkps_system_saving_vs_mbkp()),
            }
        })
        .collect();
    (rows, outcome.stats)
}

fn expect_feasible(results: &[TrialResult]) -> &[TrialResult] {
    assert!(
        !results.is_empty(),
        "too many infeasible seeds for this configuration"
    );
    results
}

/// Publishes exact sweep-wide energy totals to the `sdem-obs` gauge
/// registry (no-op when observability is off).
///
/// The sums are computed here, *after* the engine's deterministic merge,
/// by folding the per-trial reports in sorted trial order — the same
/// order an untraced sweep aggregates in — so each gauge matches the
/// untraced aggregate bit for bit at any thread count. (The meter's own
/// counters accumulate integer nanojoules concurrently instead, which
/// is order-independent but rounded.)
pub fn publish_energy_gauges(per_point: &[Vec<TrialResult>]) {
    use sdem_obs::registry::{enabled, set_gauge};
    if !enabled() {
        return;
    }
    let mut totals = [(0.0f64, 0.0f64); 4]; // (core, memory) per scheme
    for results in per_point {
        for r in results {
            for (acc, report) in
                totals
                    .iter_mut()
                    .zip([&r.sdem_on, &r.mbkp, &r.mbkps, &r.mbkps_always])
            {
                acc.0 += report.core_total().value();
                acc.1 += report.memory_total().value();
            }
        }
    }
    let labels: [(&str, &str, &str); 4] = [
        (
            "energy/sdem_on_core_j",
            "energy/sdem_on_memory_j",
            "energy/sdem_on_total_j",
        ),
        (
            "energy/mbkp_core_j",
            "energy/mbkp_memory_j",
            "energy/mbkp_total_j",
        ),
        (
            "energy/mbkps_core_j",
            "energy/mbkps_memory_j",
            "energy/mbkps_total_j",
        ),
        (
            "energy/mbkps_always_core_j",
            "energy/mbkps_always_memory_j",
            "energy/mbkps_always_total_j",
        ),
    ];
    for ((core, memory), (core_label, memory_label, total_label)) in totals.iter().zip(labels) {
        set_gauge(core_label, *core);
        set_gauge(memory_label, *memory);
        set_gauge(total_label, core + memory);
    }
}

/// One cell of the Fig. 7 sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Cell {
    /// Maximum inter-arrival `x` (ms) — utilization axis.
    pub x_ms: f64,
    /// The swept parameter (`α_m` in W for 7a, `ξ_m` in ms for 7b).
    pub param: f64,
    /// System-wide improvement of SDEM-ON over MBKPS (fraction).
    pub improvement: f64,
}

/// Fig. 7a sweep: `α_m × x`, default `ξ_m`.
pub fn fig7a(tasks_per_trial: usize, trials: usize) -> Vec<Fig7Cell> {
    fig7a_with(tasks_per_trial, trials, &SweepRunner::new()).0
}

/// [`fig7a`] on an explicit [`SweepRunner`], also returning sweep stats.
pub fn fig7a_with(
    tasks_per_trial: usize,
    trials: usize,
    runner: &SweepRunner,
) -> (Vec<Fig7Cell>, SweepStats) {
    sweep(
        tasks_per_trial,
        trials,
        &paper::ALPHA_M_POINTS_W,
        FIG7A_GRID_SEED,
        runner,
        |alpha_m| {
            Platform::paper_defaults().with_memory(
                MemoryPower::new(Watts::new(alpha_m))
                    .with_break_even(Time::from_millis(paper::DEFAULT_XI_M_MS)),
            )
        },
    )
}

/// Fig. 7b sweep: `ξ_m × x`, default `α_m`.
pub fn fig7b(tasks_per_trial: usize, trials: usize) -> Vec<Fig7Cell> {
    fig7b_with(tasks_per_trial, trials, &SweepRunner::new()).0
}

/// [`fig7b`] on an explicit [`SweepRunner`], also returning sweep stats.
pub fn fig7b_with(
    tasks_per_trial: usize,
    trials: usize,
    runner: &SweepRunner,
) -> (Vec<Fig7Cell>, SweepStats) {
    sweep(
        tasks_per_trial,
        trials,
        &paper::XI_M_POINTS_MS,
        FIG7B_GRID_SEED,
        runner,
        |xi_m| {
            Platform::paper_defaults().with_memory(
                MemoryPower::new(Watts::new(paper::DEFAULT_ALPHA_M_W))
                    .with_break_even(Time::from_millis(xi_m)),
            )
        },
    )
}

fn sweep(
    tasks_per_trial: usize,
    trials: usize,
    params: &[f64],
    grid_seed: u64,
    runner: &SweepRunner,
    platform_of: impl Fn(f64) -> Platform + Sync,
) -> (Vec<Fig7Cell>, SweepStats) {
    // One grid point per (param, x); the runner fans the replicates of
    // every point across workers and regroups them deterministically.
    let grid: Vec<(f64, f64)> = params
        .iter()
        .flat_map(|&param| paper::X_POINTS_MS.iter().map(move |&x| (param, x)))
        .collect();
    let outcome = runner.run_with_state(
        &grid,
        trials,
        grid_seed,
        Workspace::new,
        |&(param, x_ms), ctx, ws| {
            let platform = platform_of(param);
            let cfg = SyntheticConfig::paper(tasks_per_trial, Time::from_millis(x_ms));
            run_trial_resampling_in(
                |seed| sporadic(&cfg, seed),
                &platform,
                paper::NUM_CORES,
                ctx,
                ws,
            )
        },
    );
    publish_energy_gauges(&outcome.per_point);
    let cells = grid
        .iter()
        .zip(&outcome.per_point)
        .map(|(&(param, x_ms), results)| Fig7Cell {
            x_ms,
            param,
            improvement: mean(expect_feasible(results), |r| {
                r.sdem_improvement_over_mbkps()
            }),
        })
        .collect();
    (cells, outcome.stats)
}

/// Options shared by the fault-isolated (`*_robust`) figure sweeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobustOptions {
    /// Quarantine oracle divergences instead of failing fast. Only
    /// meaningful when the runner has an oracle tolerance configured.
    pub keep_going_oracle: bool,
    /// Deterministic fault injection for robustness smokes.
    pub inject: FaultInjection,
}

/// Result of a fault-isolated figure sweep: the aggregate rows (absent
/// when a trial budget stopped the sweep early), the quarantine journal,
/// and the sweep statistics.
#[derive(Debug)]
pub struct RobustFigure<Row> {
    /// Aggregated figure rows; `None` when the sweep is partial (resume
    /// from the checkpoint to finish). A row whose every replicate was
    /// quarantined carries NaN means rather than aborting the figure.
    pub rows: Option<Vec<Row>>,
    /// One record per quarantined trial, sorted by trial index —
    /// identical for any thread count.
    pub quarantine: Vec<QuarantineRecord>,
    /// Wall-clock/throughput statistics (including the quarantine count).
    pub stats: SweepStats,
    /// Trials accounted for (executed plus checkpoint-preloaded).
    pub completed: usize,
}

impl<Row> RobustFigure<Row> {
    /// Whether the sweep stopped before covering the whole grid.
    pub fn is_partial(&self) -> bool {
        self.rows.is_none()
    }
}

/// Mean of a metric over the surviving replicates of one grid point; NaN
/// when every replicate was quarantined (the figure then shows a hole
/// instead of aborting).
fn mean_or_nan(results: &[TrialResult], metric: impl Fn(&TrialResult) -> f64) -> f64 {
    if results.is_empty() {
        f64::NAN
    } else {
        mean(results, metric)
    }
}

/// Dispatches a quarantined sweep to the checkpointed engine when a
/// journal is supplied, using the bit-exact [`encode_trial_result`] /
/// [`decode_trial_result`] codec so a resumed run reproduces an
/// uninterrupted one byte for byte.
fn robust_outcome<P: Sync>(
    runner: &SweepRunner,
    points: &[P],
    trials: usize,
    grid_seed: u64,
    journal: Option<&mut CheckpointJournal>,
    trial: impl Fn(&P, &TrialCtx, &mut Workspace) -> Result<TrialResult, TrialFailure> + Sync,
) -> Result<QuarantinedOutcome<TrialResult>, SweepError> {
    match journal {
        Some(journal) => runner.try_run_checkpointed_with_state(
            points,
            trials,
            grid_seed,
            Workspace::new,
            trial,
            encode_trial_result,
            decode_trial_result,
            journal,
        ),
        None => runner.run_quarantined_with_state(points, trials, grid_seed, Workspace::new, trial),
    }
}

/// Fault-isolated [`fig6_with`]: panicking, NaN-producing or diverging
/// trials are quarantined (with their exact seed and a `sdem repro`
/// config string) instead of aborting the sweep, and the sweep optionally
/// journals every finished trial to `journal` for checkpoint/resume.
///
/// # Errors
///
/// Returns a [`SweepError`] on worker death (a fatal panic) or a
/// checkpoint I/O / mismatch problem.
pub fn fig6_robust(
    instances_per_stream: usize,
    trials: usize,
    runner: &SweepRunner,
    options: RobustOptions,
    journal: Option<&mut CheckpointJournal>,
) -> Result<RobustFigure<Fig6Row>, SweepError> {
    let platform = Platform::paper_defaults();
    let benches = [
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
        Benchmark::fft_1024(),
        Benchmark::matrix_24(),
    ];
    let outcome = robust_outcome(
        runner,
        &paper::U_POINTS,
        trials,
        FIG6_GRID_SEED,
        journal,
        |&u, ctx, ws| {
            let config = format!("--kind fig6 --instances {instances_per_stream} --u {u}");
            run_trial_quarantined_in(
                |seed| stream(&benches, u, instances_per_stream, seed),
                &platform,
                paper::NUM_CORES,
                ctx,
                options.keep_going_oracle,
                options.inject,
                &config,
                ws,
            )
        },
    )?;
    publish_energy_gauges(&outcome.per_point);
    let rows = (!outcome.is_partial()).then(|| {
        paper::U_POINTS
            .iter()
            .zip(&outcome.per_point)
            .map(|(&u, results)| Fig6Row {
                u,
                sdem_memory_saving: mean_or_nan(results, |r| r.sdem_memory_saving_vs_mbkp()),
                mbkps_memory_saving: mean_or_nan(results, |r| r.mbkps_memory_saving_vs_mbkp()),
                sdem_system_saving: mean_or_nan(results, |r| r.sdem_system_saving_vs_mbkp()),
                mbkps_system_saving: mean_or_nan(results, |r| r.mbkps_system_saving_vs_mbkp()),
            })
            .collect()
    });
    Ok(RobustFigure {
        rows,
        quarantine: outcome.quarantine,
        stats: outcome.stats,
        completed: outcome.completed,
    })
}

/// Fault-isolated [`fig7a_with`]; see [`fig6_robust`] for the semantics.
///
/// # Errors
///
/// Returns a [`SweepError`] on worker death or checkpoint problems.
pub fn fig7a_robust(
    tasks_per_trial: usize,
    trials: usize,
    runner: &SweepRunner,
    options: RobustOptions,
    journal: Option<&mut CheckpointJournal>,
) -> Result<RobustFigure<Fig7Cell>, SweepError> {
    robust_fig7(
        tasks_per_trial,
        trials,
        &paper::ALPHA_M_POINTS_W,
        FIG7A_GRID_SEED,
        runner,
        options,
        journal,
        |alpha_m| {
            Platform::paper_defaults().with_memory(
                MemoryPower::new(Watts::new(alpha_m))
                    .with_break_even(Time::from_millis(paper::DEFAULT_XI_M_MS)),
            )
        },
        |alpha_m, x_ms| {
            format!(
                "--kind synthetic --tasks {tasks_per_trial} --x-ms {x_ms} \
                 --alpha-m {alpha_m} --xi-m {}",
                paper::DEFAULT_XI_M_MS
            )
        },
    )
}

/// Fault-isolated [`fig7b_with`]; see [`fig6_robust`] for the semantics.
///
/// # Errors
///
/// Returns a [`SweepError`] on worker death or checkpoint problems.
pub fn fig7b_robust(
    tasks_per_trial: usize,
    trials: usize,
    runner: &SweepRunner,
    options: RobustOptions,
    journal: Option<&mut CheckpointJournal>,
) -> Result<RobustFigure<Fig7Cell>, SweepError> {
    robust_fig7(
        tasks_per_trial,
        trials,
        &paper::XI_M_POINTS_MS,
        FIG7B_GRID_SEED,
        runner,
        options,
        journal,
        |xi_m| {
            Platform::paper_defaults().with_memory(
                MemoryPower::new(Watts::new(paper::DEFAULT_ALPHA_M_W))
                    .with_break_even(Time::from_millis(xi_m)),
            )
        },
        |xi_m, x_ms| {
            format!(
                "--kind synthetic --tasks {tasks_per_trial} --x-ms {x_ms} \
                 --alpha-m {} --xi-m {xi_m}",
                paper::DEFAULT_ALPHA_M_W
            )
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn robust_fig7(
    tasks_per_trial: usize,
    trials: usize,
    params: &[f64],
    grid_seed: u64,
    runner: &SweepRunner,
    options: RobustOptions,
    journal: Option<&mut CheckpointJournal>,
    platform_of: impl Fn(f64) -> Platform + Sync,
    config_of: impl Fn(f64, f64) -> String + Sync,
) -> Result<RobustFigure<Fig7Cell>, SweepError> {
    let grid: Vec<(f64, f64)> = params
        .iter()
        .flat_map(|&param| paper::X_POINTS_MS.iter().map(move |&x| (param, x)))
        .collect();
    let outcome = robust_outcome(
        runner,
        &grid,
        trials,
        grid_seed,
        journal,
        |&(param, x_ms), ctx, ws| {
            let platform = platform_of(param);
            let cfg = SyntheticConfig::paper(tasks_per_trial, Time::from_millis(x_ms));
            let config = config_of(param, x_ms);
            run_trial_quarantined_in(
                |seed| sporadic(&cfg, seed),
                &platform,
                paper::NUM_CORES,
                ctx,
                options.keep_going_oracle,
                options.inject,
                &config,
                ws,
            )
        },
    )?;
    publish_energy_gauges(&outcome.per_point);
    let cells = (!outcome.is_partial()).then(|| {
        grid.iter()
            .zip(&outcome.per_point)
            .map(|(&(param, x_ms), results)| Fig7Cell {
                x_ms,
                param,
                improvement: mean_or_nan(results, |r| r.sdem_improvement_over_mbkps()),
            })
            .collect()
    });
    Ok(RobustFigure {
        rows: cells,
        quarantine: outcome.quarantine,
        stats: outcome.stats,
        completed: outcome.completed,
    })
}

/// Grid seed of the DAG federated energy-vs-cores sweep.
pub const DAG_GRID_SEED: u64 = 0xDA6_0000;

/// Configuration of the DAG federated energy-vs-cores sweep.
#[derive(Debug, Clone)]
pub struct DagSweepConfig {
    /// Number of independently seeded DAG suites (rows per core count).
    pub suites: usize,
    /// DAGs per suite, sharing one frame window.
    pub dags_per_suite: usize,
    /// Nodes per DAG (forwarded to [`sdem_workload::dag::DagConfig::paper`]).
    pub nodes: usize,
    /// Frame window (common deadline and period) of every DAG.
    pub frame: Time,
    /// Core budgets to sweep, one column per entry.
    pub cores: Vec<usize>,
    /// Master seed; per-suite seeds are mixed from it with `SplitMix64`.
    pub seed: u64,
}

impl DagSweepConfig {
    /// The committed default: three suites of four nine-node DAGs in a
    /// 120 ms frame, swept over 2–8 cores.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            suites: 3,
            dags_per_suite: 4,
            nodes: 9,
            frame: Time::from_millis(120.0),
            cores: vec![2, 3, 4, 6, 8],
            seed: DAG_GRID_SEED,
        }
    }
}

/// One cell of the DAG sweep: one suite solved under one core budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagEnergyRow {
    /// Suite index within the sweep.
    pub suite: usize,
    /// The suite's derived generator seed (replayable in isolation).
    pub seed: u64,
    /// Core budget handed to the federated allocator.
    pub cores: usize,
    /// Whether the allocator found a feasible allocation in this budget.
    pub feasible: bool,
    /// Aggregate metered energy of the merged schedule (0 if infeasible).
    pub energy_j: f64,
    /// Memory sleep achieved by the merged schedule, in milliseconds.
    pub memory_sleep_ms: f64,
    /// Dedicated clusters granted to heavy DAGs.
    pub clusters: usize,
    /// Cores carrying at least one segment.
    pub cores_used: usize,
}

/// DAG sweep on a default runner; see [`dag_energy_with`].
pub fn dag_energy(config: &DagSweepConfig) -> Vec<DagEnergyRow> {
    dag_energy_with(config, &SweepRunner::new()).0
}

/// Solves every `(suite, core budget)` cell of the grid with
/// [`sdem_core::dag::solve_dags_in`] and cross-checks each feasible
/// solution against the sim-oracle meter (divergence panics — the sweep
/// is a correctness gate, not a best-effort report). Infeasible budgets
/// become `feasible = false` rows rather than failures, so the CSV shows
/// where the federated bound stops fitting.
///
/// Every trial is a pure function of `(config, cell)`, so the rows are
/// bit-identical for any thread count.
pub fn dag_energy_with(
    config: &DagSweepConfig,
    runner: &SweepRunner,
) -> (Vec<DagEnergyRow>, SweepStats) {
    let platform = Platform::paper_defaults();
    let points: Vec<(usize, usize)> = (0..config.suites)
        .flat_map(|s| config.cores.iter().map(move |&c| (s, c)))
        .collect();
    let outcome = runner.run_with_state(
        &points,
        1,
        config.seed,
        Workspace::new,
        |&(suite, cores), _ctx, ws| {
            let seed = SplitMix64::mix(&[config.seed, suite as u64]);
            let dag_config = DagConfig::paper(config.nodes, config.frame);
            let dags = dag_suite(&dag_config, config.dags_per_suite, seed);
            let row = match solve_dags_in(&dags, &platform, cores, ws) {
                Ok(report) => {
                    let metered = report
                        .verify_against_meter(&platform, OracleOptions::default())
                        .unwrap_or_else(|e| {
                            panic!("suite {suite} at {cores} cores: oracle divergence: {e}")
                        });
                    let row = DagEnergyRow {
                        suite,
                        seed,
                        cores,
                        feasible: true,
                        energy_j: metered.value(),
                        memory_sleep_ms: report.solution.memory_sleep().as_millis(),
                        clusters: report.clusters,
                        cores_used: report.cores_used,
                    };
                    recycle_dag_report(report, ws);
                    row
                }
                Err(SdemError::NoCores | SdemError::InfeasibleTask(_)) => DagEnergyRow {
                    suite,
                    seed,
                    cores,
                    feasible: false,
                    energy_j: 0.0,
                    memory_sleep_ms: 0.0,
                    clusters: 0,
                    cores_used: 0,
                },
                Err(e) => panic!("suite {suite} at {cores} cores: {e}"),
            };
            Some(row)
        },
    );
    let rows = outcome
        .per_point
        .into_iter()
        .map(|mut cell| cell.pop().expect("one replicate per cell"))
        .collect();
    (rows, outcome.stats)
}

/// Renders the DAG sweep as CSV (one row per `(suite, cores)` cell).
pub fn dag_energy_to_csv(rows: &[DagEnergyRow]) -> String {
    let mut out =
        String::from("suite,seed,cores,feasible,energy_j,memory_sleep_ms,clusters,cores_used\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.6},{:.6},{},{}\n",
            r.suite,
            r.seed,
            r.cores,
            u8::from(r.feasible),
            r.energy_j,
            r.memory_sleep_ms,
            r.clusters,
            r.cores_used,
        ));
    }
    out
}

/// Renders Fig. 6 rows as CSV.
pub fn fig6_to_csv(rows: &[Fig6Row]) -> String {
    let mut out = String::from(
        "u,sdem_memory_saving,mbkps_memory_saving,sdem_system_saving,mbkps_system_saving\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6}\n",
            r.u,
            r.sdem_memory_saving,
            r.mbkps_memory_saving,
            r.sdem_system_saving,
            r.mbkps_system_saving,
        ));
    }
    out
}

/// Renders a Fig. 7 sweep as CSV (`param,x_ms,improvement`).
pub fn fig7_to_csv(cells: &[Fig7Cell], param_name: &str) -> String {
    let mut out = format!("{param_name},x_ms,improvement\n");
    for c in cells {
        out.push_str(&format!("{},{},{:.6}\n", c.param, c.x_ms, c.improvement));
    }
    out
}

/// Formats a Fig. 7 sweep as an aligned table (`param` rows × `x` columns).
pub fn format_fig7(cells: &[Fig7Cell], param_name: &str) -> String {
    let mut params: Vec<f64> = cells.iter().map(|c| c.param).collect();
    params.dedup();
    let mut xs: Vec<f64> = cells.iter().map(|c| c.x_ms).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();

    let mut out = String::new();
    out.push_str(&format!("{param_name:>10} |"));
    for x in &xs {
        out.push_str(&format!(" x={x:>5.0}ms"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(12 + 10 * xs.len()));
    out.push('\n');
    for p in &params {
        out.push_str(&format!("{p:>10.1} |"));
        for x in &xs {
            let cell = cells
                .iter()
                .find(|c| c.param == *p && c.x_ms == *x)
                .expect("complete sweep");
            out.push_str(&format!(" {:>8.2}%", cell.improvement * 100.0));
        }
        out.push('\n');
    }
    let avg = cells.iter().map(|c| c.improvement).sum::<f64>() / cells.len() as f64;
    out.push_str(&format!(
        "average SDEM-ON improvement over MBKPS: {:.2}%\n",
        avg * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_tiny_run_has_expected_shape() {
        let rows = fig6(6, 2);
        assert_eq!(rows.len(), paper::U_POINTS.len());
        for r in &rows {
            // SDEM-ON must save at least as much memory energy as the naive
            // MBKPS on average (the paper's headline).
            assert!(
                r.sdem_memory_saving >= r.mbkps_memory_saving - 0.02,
                "U={}: SDEM {} < MBKPS {}",
                r.u,
                r.sdem_memory_saving,
                r.mbkps_memory_saving
            );
            assert!(r.sdem_system_saving.is_finite());
        }
    }

    #[test]
    fn fig6_robust_clean_run_matches_legacy_sweep() {
        let runner = SweepRunner::new().with_threads(2);
        let (legacy, _) = fig6_with(6, 2, &runner);
        let robust = fig6_robust(6, 2, &runner, RobustOptions::default(), None).expect("sweep");
        assert!(robust.quarantine.is_empty());
        assert!(!robust.is_partial());
        let rows = robust.rows.expect("complete");
        assert_eq!(rows.len(), legacy.len());
        for (a, b) in rows.iter().zip(&legacy) {
            assert_eq!(a.u.to_bits(), b.u.to_bits());
            assert_eq!(
                a.sdem_system_saving.to_bits(),
                b.sdem_system_saving.to_bits()
            );
            assert_eq!(
                a.sdem_memory_saving.to_bits(),
                b.sdem_memory_saving.to_bits()
            );
        }
    }

    #[test]
    fn fig6_robust_quarantines_injected_faults_thread_invariantly() {
        let options = RobustOptions {
            keep_going_oracle: false,
            inject: FaultInjection { panics: 2, nans: 1 },
        };
        let run = |threads: usize| {
            let runner = SweepRunner::new().with_threads(threads);
            fig6_robust(6, 2, &runner, options, None).expect("sweep")
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.quarantine.len(), 3);
        assert_eq!(serial.stats.quarantined, 3);
        let lines = |f: &RobustFigure<Fig6Row>| {
            f.quarantine
                .iter()
                .map(|r| r.to_json_line())
                .collect::<Vec<_>>()
        };
        assert_eq!(lines(&serial), lines(&parallel));
        // Every record carries a replayable seed and a repro config.
        for r in &serial.quarantine {
            assert_ne!(r.seed, 0);
            assert!(r.config.contains("--kind"), "{}", r.config);
        }
        // Point 0 lost both replicates (trials 0 and 1 panicked) — its row
        // becomes a NaN hole rather than aborting the figure. Point 1 lost
        // one replicate (trial 2 NaN-poisoned) but keeps its survivor, and
        // every later point is untouched.
        let rows = serial.rows.expect("complete");
        assert!(rows[0].sdem_system_saving.is_nan());
        for row in &rows[1..] {
            assert!(row.sdem_system_saving.is_finite());
        }
    }

    #[test]
    fn dag_energy_rows_are_thread_invariant_and_oracle_clean() {
        let mut config = DagSweepConfig::paper();
        config.suites = 2;
        config.cores = vec![1, 3, 6];
        let run =
            |threads: usize| dag_energy_with(&config, &SweepRunner::new().with_threads(threads)).0;
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), config.suites * config.cores.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.suite, b.suite);
            assert_eq!(a.cores, b.cores);
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
            assert_eq!(a.memory_sleep_ms.to_bits(), b.memory_sleep_ms.to_bits());
        }
        // The suites fit comfortably at every budget here, and granting
        // more cores can only relax the per-core windows.
        for r in &serial {
            assert!(r.feasible, "suite {} at {} cores", r.suite, r.cores);
            assert!(r.energy_j > 0.0);
            assert!(r.cores_used <= r.cores);
        }
        let csv = dag_energy_to_csv(&serial);
        assert!(csv.starts_with("suite,seed,cores,feasible"));
        assert_eq!(csv.lines().count(), serial.len() + 1);
    }

    #[test]
    fn fig7_format_contains_all_cells() {
        let cells = vec![
            Fig7Cell {
                x_ms: 100.0,
                param: 1.0,
                improvement: 0.05,
            },
            Fig7Cell {
                x_ms: 200.0,
                param: 1.0,
                improvement: 0.10,
            },
        ];
        let s = format_fig7(&cells, "alpha_m");
        assert!(s.contains("alpha_m"));
        assert!(s.contains("5.00%"));
        assert!(s.contains("10.00%"));
        assert!(s.contains("average"));
    }
}
