//! A dependency-free microbenchmark harness for the `benches/` targets.
//!
//! Each bench target is a plain `harness = false` binary: it calls
//! [`bench()`] per case and prints one aligned line per measurement. The
//! budget per case defaults to 300 ms of measurement after a short
//! warm-up; set `SDEM_BENCH_MS` to change it (CI uses a small budget).

use std::time::{Duration, Instant};

/// An opaque sink preventing the optimizer from deleting the benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One measurement: `iters` timed iterations over `total` wall time.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case label.
    pub name: String,
    /// Timed iterations.
    pub iters: u64,
    /// Total wall time of the timed iterations.
    pub total: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters as f64
    }

    /// Iterations per second.
    pub fn per_sec(&self) -> f64 {
        self.iters as f64 / self.total.as_secs_f64().max(1e-12)
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ns = self.ns_per_iter();
        let (value, unit) = if ns >= 1e9 {
            (ns / 1e9, "s")
        } else if ns >= 1e6 {
            (ns / 1e6, "ms")
        } else if ns >= 1e3 {
            (ns / 1e3, "µs")
        } else {
            (ns, "ns")
        };
        write!(
            f,
            "{:<44} {:>10.3} {:<2}/iter  ({} iters)",
            self.name, value, unit, self.iters
        )
    }
}

/// The per-case measurement budget: `SDEM_BENCH_MS` ms, default 300.
pub fn budget() -> Duration {
    let ms = std::env::var("SDEM_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms.max(1))
}

/// Times `f` until the measurement budget is spent (after warm-up),
/// prints the result and returns it.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    let budget = budget();
    // Warm-up: run until ~10% of the budget is spent, at least once.
    let warmup_end = Instant::now() + budget / 10;
    let mut warmup_iters = 0u64;
    let warmup_start = Instant::now();
    loop {
        black_box(f());
        warmup_iters += 1;
        if Instant::now() >= warmup_end {
            break;
        }
    }
    let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

    // Measure in batches sized to roughly a tenth of the budget each.
    let batch = ((budget.as_secs_f64() / 10.0 / per_iter.max(1e-9)) as u64).max(1);
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    while total < budget {
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        total += t0.elapsed();
        iters += batch;
    }
    let m = Measurement {
        name: name.to_string(),
        iters,
        total,
    };
    println!("{m}");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        std::env::set_var("SDEM_BENCH_MS", "5");
        let m = bench("noop-ish", || black_box(3u64).wrapping_mul(7));
        assert!(m.iters >= 1);
        assert!(m.ns_per_iter() >= 0.0);
        assert!(m.to_string().contains("noop-ish"));
    }
}
