//! One evaluation trial: schedule the same task set with SDEM-ON, MBKP and
//! MBKPS and meter all three on the same platform.
//!
//! Trial failures are reported through the workspace-wide
//! [`TrialError`] taxonomy (re-exported from `sdem-core`); the quarantined
//! entry points additionally convert them into the string-based
//! [`sdem_exec::TrialFailure`] records the sweep engine journals.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use sdem_baselines::mbkp::{self, Assignment};
use sdem_core::online::schedule_online_in;
pub use sdem_core::TrialError;
use sdem_core::{OracleError, OracleOptions, Solution};
use sdem_exec::{payload_text, SweepRunner, TrialCtx, TrialFailure, FATAL_PANIC_PREFIX};
use sdem_power::Platform;
use sdem_sim::{
    simulate_event_driven, simulate_with_options_in, EnergyReport, SimOptions, SleepPolicy,
};
use sdem_types::{Joules, TaskSet, Time, Workspace};

/// The metered schedules of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// SDEM-ON (the paper's heuristic): memory sleeps when profitable.
    pub sdem_on: EnergyReport,
    /// MBKP: multi-core OA, memory never sleeps.
    pub mbkp: EnergyReport,
    /// MBKPS: the MBKP schedule with opportunistic memory sleeping — it
    /// sleeps whatever common idle the schedule happens to have (without
    /// shaping it), skipping gaps shorter than the break-even time. This
    /// matches the paper's observation that MBKPS degenerates to MBKP at
    /// high utilization rather than falling below it.
    pub mbkps: EnergyReport,
    /// Ablation: MBKPS pricing sleep *literally* on every gap, paying the
    /// round trip even when unprofitable.
    pub mbkps_always: EnergyReport,
    /// Peak number of cores SDEM-ON used (the paper assumes ≤ 8).
    pub sdem_cores_used: usize,
}

impl TrialResult {
    /// System-wide energy saving of SDEM-ON relative to MBKP:
    /// `1 − E_SDEM / E_MBKP`.
    pub fn sdem_system_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.sdem_on.total().value() / self.mbkp.total().value()
    }

    /// System-wide energy saving of MBKPS relative to MBKP.
    pub fn mbkps_system_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.mbkps.total().value() / self.mbkp.total().value()
    }

    /// Memory static-energy saving of SDEM-ON relative to MBKP (Fig. 6a).
    pub fn sdem_memory_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.sdem_on.memory_total().value() / self.mbkp.memory_total().value()
    }

    /// Memory static-energy saving of MBKPS relative to MBKP (Fig. 6a).
    pub fn mbkps_memory_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.mbkps.memory_total().value() / self.mbkp.memory_total().value()
    }

    /// Relative system-energy improvement of SDEM-ON over MBKPS
    /// (the Fig. 7 metric): `1 − E_SDEM / E_MBKPS`.
    pub fn sdem_improvement_over_mbkps(&self) -> f64 {
        1.0 - self.sdem_on.total().value() / self.mbkps.total().value()
    }

    /// Checks every metered system total for NaN/∞, returning the first
    /// offender as a [`TrialError::NonFiniteEnergy`]. The quarantined sweep
    /// path runs this on every trial so a poisoned simulation is recorded
    /// instead of silently skewing the aggregates.
    pub fn ensure_finite(&self) -> Result<(), TrialError> {
        for (context, report) in [
            ("SDEM-ON system energy", &self.sdem_on),
            ("MBKP system energy", &self.mbkp),
            ("MBKPS system energy", &self.mbkps),
            ("MBKPS-always system energy", &self.mbkps_always),
        ] {
            let value = report.total().value();
            if !value.is_finite() {
                return Err(TrialError::NonFiniteEnergy { context, value });
            }
        }
        Ok(())
    }
}

/// How a trial treats the sim-oracle cross-check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OracleCheck {
    /// No cross-check.
    Off,
    /// Cross-check at the given relative tolerance; divergence panics with
    /// the [`FATAL_PANIC_PREFIX`] so even a panic-containing sweep worker
    /// re-raises it (a diverging oracle is a correctness bug, not a bad
    /// seed). This is the historical default.
    FailFast(f64),
    /// Cross-check at the given relative tolerance; divergence is returned
    /// as [`TrialError::OracleDivergence`] carrying both energies, so the
    /// sweep can quarantine the trial and keep going.
    Quarantine(f64),
}

impl OracleCheck {
    fn tolerance(self) -> Option<f64> {
        match self {
            Self::Off => None,
            Self::FailFast(t) | Self::Quarantine(t) => Some(t),
        }
    }

    /// Raises `err` according to the mode: fail-fast panics (with the
    /// fatal prefix), quarantine returns it.
    fn raise(self, err: TrialError) -> TrialError {
        if let Self::FailFast(_) = self {
            panic!("{FATAL_PANIC_PREFIX}{err}");
        }
        err
    }
}

/// Runs one trial on `cores` cores.
///
/// SDEM-ON is metered with `WhenProfitable` memory sleeping; the MBKP
/// schedule is metered twice: `NeverSleep` (MBKP) and `AlwaysSleep`
/// (MBKPS). All three use profitable core sleeping, matching the paper's
/// focus on the memory policy difference.
///
/// # Errors
///
/// Returns an error when either scheduler finds the instance infeasible
/// (e.g. the round-robin assignment overloads a core) — callers typically
/// resample the seed.
pub fn run_trial(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
) -> Result<TrialResult, TrialError> {
    run_trial_with_oracle(tasks, platform, cores, None)
}

/// [`run_trial`] with an optional sim-oracle cross-check.
///
/// When `oracle_tol` is set, the SDEM-ON schedule is additionally priced
/// analytically ([`Solution::from_schedule`]) and verified against the
/// interval meter, and the meter is cross-checked against the event-driven
/// engine — both within the given relative tolerance.
///
/// # Panics
///
/// Panics on oracle divergence. A diverging oracle means the analytic
/// accounting and the simulator disagree — a correctness bug, not an
/// infeasible seed — so it must not be swallowed by the resampling loop.
/// Use [`run_trial_checked`] with [`OracleCheck::Quarantine`] to get the
/// divergence back as a [`TrialError`] instead.
///
/// # Errors
///
/// Returns an error when either scheduler finds the instance infeasible;
/// see [`run_trial`].
pub fn run_trial_with_oracle(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    oracle_tol: Option<f64>,
) -> Result<TrialResult, TrialError> {
    run_trial_with_oracle_in(tasks, platform, cores, oracle_tol, &mut Workspace::new())
}

/// In-place [`run_trial_with_oracle`]: all scheduling and metering
/// scratch comes from `ws`, and both schedules are recycled back into it
/// before returning, so a sweep worker reusing one workspace runs its
/// trials without growing the heap.
///
/// # Panics
///
/// Panics on oracle divergence; see [`run_trial_with_oracle`].
///
/// # Errors
///
/// Returns an error when either scheduler finds the instance infeasible;
/// see [`run_trial`].
pub fn run_trial_with_oracle_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    oracle_tol: Option<f64>,
    ws: &mut Workspace,
) -> Result<TrialResult, TrialError> {
    let oracle = match oracle_tol {
        Some(tol) => OracleCheck::FailFast(tol),
        None => OracleCheck::Off,
    };
    run_trial_checked_in(tasks, platform, cores, oracle, ws)
}

/// [`run_trial_checked_in`] with a fresh workspace — the allocating entry
/// point the `sdem repro` subcommand uses to replay a quarantined seed.
///
/// # Errors
///
/// Returns the trial's [`TrialError`]; see [`run_trial_checked_in`].
pub fn run_trial_checked(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    oracle: OracleCheck,
) -> Result<TrialResult, TrialError> {
    run_trial_checked_in(tasks, platform, cores, oracle, &mut Workspace::new())
}

/// The single trial implementation behind [`run_trial`],
/// [`run_trial_with_oracle`] and the quarantined sweep path: schedules,
/// meters, optionally cross-checks against the oracle, and reports every
/// failure through the [`TrialError`] taxonomy.
///
/// # Panics
///
/// Only with [`OracleCheck::FailFast`], on oracle divergence — using the
/// [`FATAL_PANIC_PREFIX`] so panic-containing sweeps re-raise it.
///
/// # Errors
///
/// * [`TrialError::Scheme`] / [`TrialError::Baseline`] when a scheduler
///   finds the instance infeasible (resamplable);
/// * [`TrialError::Simulation`] when a produced schedule fails the meter's
///   validation;
/// * [`TrialError::NonFiniteEnergy`] when any metered total is NaN/∞;
/// * [`TrialError::OracleDivergence`] (quarantine mode only) when the
///   analytic accounting, interval meter and event engine disagree.
pub fn run_trial_checked_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    oracle: OracleCheck,
    ws: &mut Workspace,
) -> Result<TrialResult, TrialError> {
    // Per-scheme solve latency + trace spans for the sweep's two actual
    // solver invocations (one relaxed load each when observability is
    // off; `Scheme::solve_into` covers the CLI's generic path the same
    // way).
    let clock = sdem_obs::registry::maybe_start();
    let sdem_schedule = {
        let _span = sdem_obs::trace::span("solve/sdem-on");
        schedule_online_in(tasks, platform, ws)?
    };
    sdem_obs::registry::record_elapsed("solve/sdem-on", clock);
    let clock = sdem_obs::registry::maybe_start();
    let mbkp_schedule = {
        let _span = sdem_obs::trace::span("solve/mbkp");
        mbkp::schedule_online_in(tasks, platform, cores, Assignment::RoundRobin, ws)
            .map_err(|e| TrialError::Baseline(e.to_string()))?
    };
    sdem_obs::registry::record_elapsed("solve/mbkp", clock);

    let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
    let never = SimOptions {
        memory_policy: SleepPolicy::NeverSleep,
        ..profit
    };
    let always = SimOptions {
        memory_policy: SleepPolicy::AlwaysSleep,
        ..profit
    };

    let clock = sdem_obs::registry::maybe_start();
    let _span = sdem_obs::trace::span("simulate/trial-meters");
    let sdem_on = simulate_with_options_in(&sdem_schedule, tasks, platform, profit, ws)?;
    let mbkp_report = simulate_with_options_in(&mbkp_schedule, tasks, platform, never, ws)?;
    let mbkps_report = simulate_with_options_in(&mbkp_schedule, tasks, platform, profit, ws)?;
    let mbkps_always = simulate_with_options_in(&mbkp_schedule, tasks, platform, always, ws)?;
    sdem_obs::registry::record_elapsed("simulate/trial-meters", clock);
    drop(_span);

    if let Some(tol) = oracle.tolerance() {
        // Analytic accounting vs the interval meter, through the canonical
        // Solution API.
        let analytic = Solution::from_schedule_in(sdem_schedule.clone(), platform, ws);
        let verdict = analytic.verify_against_meter(
            tasks,
            platform,
            OracleOptions::with_sim(profit).with_tolerance(tol),
        );
        sdem_core::recycle_report(analytic, ws);
        if let Err(e) = verdict {
            let err = match e {
                OracleError::Schedule(se) => TrialError::Simulation(se),
                OracleError::Mismatch {
                    predicted,
                    metered,
                    relative,
                    tolerance,
                } => TrialError::OracleDivergence {
                    check: "SDEM-ON analytic vs meter".to_string(),
                    predicted: predicted.value(),
                    metered: metered.value(),
                    relative,
                    tolerance,
                },
                // OracleError is non_exhaustive; nothing else exists today.
                other => TrialError::SolverPanic {
                    payload: format!("unknown oracle error: {other}"),
                },
            };
            return Err(oracle.raise(err));
        }
        // Interval meter vs the event-driven engine on both schedules.
        for (name, schedule, opts, metered) in [
            ("SDEM-ON/profitable", &sdem_schedule, profit, &sdem_on),
            ("MBKP/never-sleep", &mbkp_schedule, never, &mbkp_report),
            ("MBKPS/profitable", &mbkp_schedule, profit, &mbkps_report),
        ] {
            let engine = simulate_event_driven(schedule, tasks, platform, opts)?;
            let (a, b) = (engine.total().value(), metered.total().value());
            let scale = a.abs().max(b.abs());
            let relative = if scale == 0.0 {
                0.0
            } else {
                (a - b).abs() / scale
            };
            if relative > tol {
                let err = TrialError::OracleDivergence {
                    check: format!("{name} event engine vs meter"),
                    predicted: a,
                    metered: b,
                    relative,
                    tolerance: tol,
                };
                return Err(oracle.raise(err));
            }
        }
    }

    let sdem_cores_used = {
        let mut cores = ws.take_core_ids();
        sdem_schedule.cores_into(&mut cores);
        let n = cores.len();
        ws.recycle_core_ids(cores);
        n
    };
    ws.recycle_schedule(sdem_schedule);
    ws.recycle_schedule(mbkp_schedule);

    let result = TrialResult {
        sdem_on,
        mbkp: mbkp_report,
        mbkps: mbkps_report,
        mbkps_always,
        sdem_cores_used,
    };
    result.ensure_finite()?;
    Ok(result)
}

/// Seed-resampling budget of one replicate: a trial draws at most this
/// many seeds from its private stream before it is recorded as failed.
pub const MAX_ATTEMPTS_PER_TRIAL: usize = 16;

/// Which synthetic fault an injected trial suffers. Selection is a pure
/// function of the trial index, so injection is thread-count invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectedFault {
    /// Panic inside the trial closure before any work happens.
    Panic,
    /// Poison the finished result with a NaN energy.
    NanEnergy,
}

/// Deterministic fault injection for robustness smokes: the first
/// `panics` trial indices panic inside the solver, the next `nans` return
/// a NaN energy. Because selection keys on the trial index alone, the
/// same trials fault at any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Trials `0..panics` panic mid-trial.
    pub panics: usize,
    /// Trials `panics..panics+nans` produce a NaN system energy.
    pub nans: usize,
}

impl FaultInjection {
    /// Parses a `key=N[,key=N]` spec, e.g. `panics=3,nans=2`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed parts or unknown
    /// keys (the CLI prints it verbatim).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad injection `{part}`; expected key=N"))?;
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("bad injection count `{}`", value.trim()))?;
            match key.trim() {
                "panics" => out.panics = count,
                "nans" => out.nans = count,
                other => {
                    return Err(format!(
                        "unknown injection kind `{other}` (expected panics or nans)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Whether no faults are injected at all.
    pub fn is_empty(&self) -> bool {
        self.panics == 0 && self.nans == 0
    }

    fn kind_for(&self, trial_index: usize) -> Option<InjectedFault> {
        if trial_index < self.panics {
            Some(InjectedFault::Panic)
        } else if trial_index < self.panics + self.nans {
            Some(InjectedFault::NanEnergy)
        } else {
            None
        }
    }
}

/// Runs one replicate for a quarantined sweep: resamples infeasible seeds
/// exactly like [`run_trial_resampling_in`], but converts every
/// non-resamplable failure — a solver panic (caught per attempt, so the
/// [`TrialFailure`] carries the exact seed that crashed), a NaN energy, an
/// oracle divergence in keep-going mode, or an exhausted retry budget —
/// into a structured [`TrialFailure`] for the quarantine journal.
///
/// `config` is an opaque reproduction string (typically the equivalent
/// `sdem repro` flags) stored verbatim in the failure record. `inject`
/// deterministically fabricates faults for robustness smokes; pass
/// [`FaultInjection::default`] for none.
///
/// # Panics
///
/// Re-raises panics carrying the [`FATAL_PANIC_PREFIX`] — in particular
/// oracle divergence when `keep_going_oracle` is false — so genuine
/// correctness bugs still abort the sweep.
///
/// # Errors
///
/// Returns the structured [`TrialFailure`] to be quarantined.
#[allow(clippy::too_many_arguments)]
pub fn run_trial_quarantined_in(
    make_tasks: impl Fn(u64) -> TaskSet,
    platform: &Platform,
    cores: usize,
    ctx: &TrialCtx,
    keep_going_oracle: bool,
    inject: FaultInjection,
    config: &str,
    ws: &mut Workspace,
) -> Result<TrialResult, TrialFailure> {
    let oracle = match ctx.oracle_tolerance() {
        None => OracleCheck::Off,
        Some(t) if keep_going_oracle => OracleCheck::Quarantine(t),
        Some(t) => OracleCheck::FailFast(t),
    };
    let injected = inject.kind_for(ctx.trial_index());
    let quarantine = |e: &TrialError, seed: u64| {
        TrialFailure::new(e.kind(), e.to_string())
            .with_seed(seed)
            .with_config(config)
    };

    for (attempt, seed) in ctx.seeds().take(MAX_ATTEMPTS_PER_TRIAL).enumerate() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if attempt == 0 && injected == Some(InjectedFault::Panic) {
                panic!("injected fault: solver panic (trial {})", ctx.trial_index());
            }
            let tasks = make_tasks(seed);
            let result = run_trial_checked_in(&tasks, platform, cores, oracle, ws);
            ws.recycle_tasks(tasks.into_tasks());
            result
        }));
        match outcome {
            Err(payload) => {
                let text = payload_text(payload.as_ref());
                if text.starts_with(FATAL_PANIC_PREFIX) {
                    resume_unwind(payload);
                }
                // The unwind may have left half-recycled pools behind;
                // rebuild the workspace before anyone reuses it.
                *ws = Workspace::new();
                return Err(TrialFailure::panic(text)
                    .with_seed(seed)
                    .with_config(config));
            }
            Ok(Ok(mut result)) => {
                if injected == Some(InjectedFault::NanEnergy) {
                    result.sdem_on.core_dynamic = Joules::new(f64::NAN);
                }
                if let Err(e) = result.ensure_finite() {
                    return Err(quarantine(&e, seed));
                }
                return Ok(result);
            }
            Ok(Err(e)) if e.is_resamplable() => {
                sdem_obs::registry::incr(sdem_obs::Counter::TrialsResampled);
                continue;
            }
            Ok(Err(e)) => return Err(quarantine(&e, seed)),
        }
    }
    let e = TrialError::RetryBudgetExhausted {
        attempts: MAX_ATTEMPTS_PER_TRIAL,
    };
    Err(quarantine(&e, ctx.seed(0)))
}

/// Encodes a [`TrialResult`] as one deterministic, bit-exact text line for
/// the checkpoint journal: 41 space-separated tokens — for each of the
/// four reports, six energies and two times as 16-hex-digit `f64::to_bits`
/// plus two decimal counters, then the peak core count.
pub fn encode_trial_result(r: &TrialResult) -> String {
    let mut tokens: Vec<String> = Vec::with_capacity(41);
    for report in [&r.sdem_on, &r.mbkp, &r.mbkps, &r.mbkps_always] {
        for joules in [
            report.core_dynamic,
            report.core_static,
            report.core_transition,
            report.memory_static,
            report.memory_dynamic,
            report.memory_transition,
        ] {
            tokens.push(format!("{:016x}", joules.value().to_bits()));
        }
        for time in [report.memory_awake_time, report.memory_sleep_time] {
            tokens.push(format!("{:016x}", time.value().to_bits()));
        }
        tokens.push(report.memory_sleeps.to_string());
        tokens.push(report.core_sleeps.to_string());
    }
    tokens.push(r.sdem_cores_used.to_string());
    tokens.join(" ")
}

fn next_bits(tokens: &mut std::str::SplitAsciiWhitespace<'_>) -> Option<f64> {
    Some(f64::from_bits(
        u64::from_str_radix(tokens.next()?, 16).ok()?,
    ))
}

fn next_count(tokens: &mut std::str::SplitAsciiWhitespace<'_>) -> Option<usize> {
    tokens.next()?.parse().ok()
}

fn next_report(tokens: &mut std::str::SplitAsciiWhitespace<'_>) -> Option<EnergyReport> {
    Some(EnergyReport {
        core_dynamic: Joules::new(next_bits(tokens)?),
        core_static: Joules::new(next_bits(tokens)?),
        core_transition: Joules::new(next_bits(tokens)?),
        memory_static: Joules::new(next_bits(tokens)?),
        memory_dynamic: Joules::new(next_bits(tokens)?),
        memory_transition: Joules::new(next_bits(tokens)?),
        memory_awake_time: Time::from_secs(next_bits(tokens)?),
        memory_sleep_time: Time::from_secs(next_bits(tokens)?),
        memory_sleeps: next_count(tokens)?,
        core_sleeps: next_count(tokens)?,
    })
}

/// Inverse of [`encode_trial_result`]. Returns `None` on any malformed or
/// missing token (the resume path then re-runs the trial, which is always
/// safe because trials are deterministic).
pub fn decode_trial_result(line: &str) -> Option<TrialResult> {
    let mut tokens = line.split_ascii_whitespace();
    let result = TrialResult {
        sdem_on: next_report(&mut tokens)?,
        mbkp: next_report(&mut tokens)?,
        mbkps: next_report(&mut tokens)?,
        mbkps_always: next_report(&mut tokens)?,
        sdem_cores_used: next_count(&mut tokens)?,
    };
    if tokens.next().is_some() {
        return None;
    }
    Some(result)
}

/// Runs one replicate of a sweep, resampling task sets from the trial's
/// private seed stream until a feasible instance is found (bounded by
/// [`MAX_ATTEMPTS_PER_TRIAL`]). Because the stream belongs to the trial
/// alone, the result does not depend on scheduling order or thread count.
///
/// When the sweep was configured with an oracle tolerance
/// ([`sdem_exec::SweepRunner::with_oracle`], surfaced through
/// `ctx.oracle_tolerance()`), every attempted trial is cross-checked; see
/// [`run_trial_with_oracle`].
///
/// # Panics
///
/// Panics on sim-oracle divergence (a correctness bug, deliberately not
/// absorbed by the resampling loop).
pub fn run_trial_resampling(
    make_tasks: impl Fn(u64) -> TaskSet,
    platform: &Platform,
    cores: usize,
    ctx: &TrialCtx,
) -> Option<TrialResult> {
    run_trial_resampling_in(make_tasks, platform, cores, ctx, &mut Workspace::new())
}

/// In-place [`run_trial_resampling`]: every attempted trial draws its
/// scratch from `ws`, and each attempt's task set is recycled back into
/// the workspace, so a sweep worker amortizes all per-trial allocations
/// across its whole share of the sweep.
///
/// # Panics
///
/// Panics on sim-oracle divergence; see [`run_trial_resampling`].
pub fn run_trial_resampling_in(
    make_tasks: impl Fn(u64) -> TaskSet,
    platform: &Platform,
    cores: usize,
    ctx: &TrialCtx,
    ws: &mut Workspace,
) -> Option<TrialResult> {
    let oracle_tol = ctx.oracle_tolerance();
    ctx.seeds().take(MAX_ATTEMPTS_PER_TRIAL).find_map(|seed| {
        let tasks = make_tasks(seed);
        let result = run_trial_with_oracle_in(&tasks, platform, cores, oracle_tol, ws).ok();
        ws.recycle_tasks(tasks.into_tasks());
        if result.is_none() {
            sdem_obs::registry::incr(sdem_obs::Counter::TrialsResampled);
        }
        result
    })
}

/// Runs `trials` replicates in parallel (per-trial deterministic seeding,
/// so any thread count yields the same results) and returns them in
/// replicate order.
///
/// # Panics
///
/// Panics if any replicate exhausts its [`MAX_ATTEMPTS_PER_TRIAL`] retry
/// budget without a feasible seed — a sign the configuration is
/// overloaded.
pub fn run_trials(
    make_tasks: impl Fn(u64) -> TaskSet + Sync,
    platform: &Platform,
    cores: usize,
    trials: usize,
    seed_base: u64,
) -> Vec<TrialResult> {
    run_trials_on(
        &SweepRunner::new(),
        make_tasks,
        platform,
        cores,
        trials,
        seed_base,
    )
}

/// [`run_trials`] on an explicit [`SweepRunner`] (thread count, progress).
pub fn run_trials_on(
    runner: &SweepRunner,
    make_tasks: impl Fn(u64) -> TaskSet + Sync,
    platform: &Platform,
    cores: usize,
    trials: usize,
    seed_base: u64,
) -> Vec<TrialResult> {
    let outcome = runner.run_with_state(&[()], trials, seed_base, Workspace::new, |_, ctx, ws| {
        run_trial_resampling_in(&make_tasks, platform, cores, ctx, ws)
    });
    assert_eq!(
        outcome.stats.failures, 0,
        "too many infeasible seeds for this configuration"
    );
    outcome.per_point.into_iter().next().unwrap_or_default()
}

/// Mean of a per-trial metric.
pub fn mean(results: &[TrialResult], metric: impl Fn(&TrialResult) -> f64) -> f64 {
    results.iter().map(metric).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::Time;
    use sdem_workload::synthetic::{sporadic, SyntheticConfig};

    #[test]
    fn trial_produces_sane_orderings() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
        let results = run_trials(|s| sporadic(&cfg, s), &platform, 8, 3, 100);
        for r in &results {
            // Sleeping never *increases* the pure memory bill relative to
            // never-sleeping when the policy is profitable.
            assert!(
                r.sdem_on.total().value() > 0.0
                    && r.mbkp.total().value() > 0.0
                    && r.mbkps.total().value() > 0.0
            );
            // Both schedules execute identical work; dynamic energies are
            // positive and finite.
            assert!(r.sdem_on.core_dynamic.value().is_finite());
            // SDEM-ON should not lose to MBKPS on total energy in this
            // low-utilization configuration.
            assert!(
                r.sdem_improvement_over_mbkps() > -0.05,
                "SDEM-ON unexpectedly much worse: {}",
                r.sdem_improvement_over_mbkps()
            );
        }
    }

    #[test]
    fn oracle_sweep_agrees_at_any_thread_count() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(12, Time::from_millis(600.0));
        let run = |threads: usize| {
            let runner = SweepRunner::new().with_threads(threads).with_oracle(true);
            run_trials_on(&runner, |s| sporadic(&cfg, s), &platform, 8, 3, 42)
        };
        // The oracle passes (no panic) and stays thread-count invariant.
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.sdem_on.total(), b.sdem_on.total());
        }
    }

    #[test]
    #[should_panic(expected = "sim-oracle failure")]
    fn oracle_trips_on_zero_tolerance_engine_disagreement() {
        // With tolerance 0 even benign FP summation-order differences
        // between the meter and the engine trip the oracle, proving the
        // failure path is loud rather than silently resampled.
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
        for seed in 0..20 {
            let tasks = sporadic(&cfg, seed);
            let _ = run_trial_with_oracle(&tasks, &platform, 8, Some(0.0));
        }
        // If no seed trips a zero tolerance the two simulators are
        // bit-identical here; treat that as vacuous success.
        panic!("sim-oracle failure: vacuous (simulators bit-identical)");
    }

    #[test]
    fn quarantine_mode_returns_divergence_instead_of_panicking() {
        // The same zero-tolerance disagreement, routed through the
        // taxonomy: no panic, a typed OracleDivergence carrying both
        // energies. At least one of the 20 seeds must trip (otherwise the
        // fail-fast test above would be reporting vacuous success too).
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
        let mut divergences = 0;
        for seed in 0..20 {
            let tasks = sporadic(&cfg, seed);
            if let Err(TrialError::OracleDivergence {
                predicted,
                metered,
                relative,
                ..
            }) = run_trial_checked(&tasks, &platform, 8, OracleCheck::Quarantine(0.0))
            {
                assert!(predicted.is_finite() && metered.is_finite());
                assert!(relative > 0.0);
                divergences += 1;
            }
        }
        assert!(divergences > 0, "zero-tolerance oracle never tripped");
    }

    #[test]
    fn fault_injection_spec_parses_and_selects_by_trial_index() {
        let inject = FaultInjection::parse("panics=3,nans=2").expect("spec");
        assert_eq!(inject.panics, 3);
        assert_eq!(inject.nans, 2);
        assert!(!inject.is_empty());
        assert_eq!(inject.kind_for(0), Some(InjectedFault::Panic));
        assert_eq!(inject.kind_for(2), Some(InjectedFault::Panic));
        assert_eq!(inject.kind_for(3), Some(InjectedFault::NanEnergy));
        assert_eq!(inject.kind_for(4), Some(InjectedFault::NanEnergy));
        assert_eq!(inject.kind_for(5), None);

        assert!(FaultInjection::parse("").expect("empty").is_empty());
        assert!(FaultInjection::parse("panics=x").is_err());
        assert!(FaultInjection::parse("oops=1").is_err());
        assert!(FaultInjection::parse("panics").is_err());
    }

    #[test]
    fn quarantined_trial_records_injected_faults_with_seeds() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(12, Time::from_millis(600.0));
        let inject = FaultInjection { panics: 1, nans: 1 };
        let mut ws = Workspace::new();

        // Trial 0: injected panic, quarantined with the exact seed.
        let ctx = TrialCtx::new(99, 0, 0, 2);
        let f = run_trial_quarantined_in(
            |s| sporadic(&cfg, s),
            &platform,
            8,
            &ctx,
            false,
            inject,
            "--demo",
            &mut ws,
        )
        .expect_err("injected panic must quarantine");
        assert_eq!(f.kind, "solver-panic");
        assert!(f.detail.contains("injected fault"), "{}", f.detail);
        assert_eq!(f.seed, Some(ctx.seed(0)));
        assert_eq!(f.config, "--demo");

        // Trial 1: NaN poisoning, quarantined as non-finite energy.
        let ctx = TrialCtx::new(99, 0, 1, 2);
        let f = run_trial_quarantined_in(
            |s| sporadic(&cfg, s),
            &platform,
            8,
            &ctx,
            false,
            inject,
            "--demo",
            &mut ws,
        )
        .expect_err("injected NaN must quarantine");
        assert_eq!(f.kind, "non-finite-energy");
        assert!(f.seed.is_some());

        // Trial 2: clean — identical to the un-instrumented path.
        let ctx = TrialCtx::new(99, 1, 0, 2);
        let clean = run_trial_quarantined_in(
            |s| sporadic(&cfg, s),
            &platform,
            8,
            &ctx,
            false,
            inject,
            "--demo",
            &mut ws,
        )
        .expect("clean trial");
        let reference = run_trial_resampling_in(|s| sporadic(&cfg, s), &platform, 8, &ctx, &mut ws)
            .expect("reference");
        assert_eq!(encode_trial_result(&clean), encode_trial_result(&reference));
    }

    #[test]
    fn trial_result_codec_round_trips_bit_exactly() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(12, Time::from_millis(600.0));
        let tasks = sporadic(&cfg, 5);
        let r = run_trial(&tasks, &platform, 8).expect("trial");
        let encoded = encode_trial_result(&r);
        assert_eq!(encoded.split_ascii_whitespace().count(), 41);
        let decoded = decode_trial_result(&encoded).expect("decode");
        assert_eq!(encode_trial_result(&decoded), encoded);

        assert!(decode_trial_result("").is_none());
        assert!(decode_trial_result(&encoded[..encoded.len() - 4]).is_none());
        assert!(decode_trial_result(&format!("{encoded} 7")).is_none());
    }

    #[test]
    fn mean_helper() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(12, Time::from_millis(600.0));
        let results = run_trials(|s| sporadic(&cfg, s), &platform, 8, 2, 7);
        let m = mean(&results, |r| r.sdem_system_saving_vs_mbkp());
        assert!(m.is_finite());
    }
}
