//! One evaluation trial: schedule the same task set with SDEM-ON, MBKP and
//! MBKPS and meter all three on the same platform.

use sdem_baselines::mbkp::{self, Assignment};
use sdem_core::online::schedule_online;
use sdem_exec::{SweepRunner, TrialCtx};
use sdem_power::Platform;
use sdem_sim::{simulate_with_options, EnergyReport, SimOptions, SleepPolicy};
use sdem_types::TaskSet;

/// The metered schedules of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// SDEM-ON (the paper's heuristic): memory sleeps when profitable.
    pub sdem_on: EnergyReport,
    /// MBKP: multi-core OA, memory never sleeps.
    pub mbkp: EnergyReport,
    /// MBKPS: the MBKP schedule with opportunistic memory sleeping — it
    /// sleeps whatever common idle the schedule happens to have (without
    /// shaping it), skipping gaps shorter than the break-even time. This
    /// matches the paper's observation that MBKPS degenerates to MBKP at
    /// high utilization rather than falling below it.
    pub mbkps: EnergyReport,
    /// Ablation: MBKPS pricing sleep *literally* on every gap, paying the
    /// round trip even when unprofitable.
    pub mbkps_always: EnergyReport,
    /// Peak number of cores SDEM-ON used (the paper assumes ≤ 8).
    pub sdem_cores_used: usize,
}

impl TrialResult {
    /// System-wide energy saving of SDEM-ON relative to MBKP:
    /// `1 − E_SDEM / E_MBKP`.
    pub fn sdem_system_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.sdem_on.total().value() / self.mbkp.total().value()
    }

    /// System-wide energy saving of MBKPS relative to MBKP.
    pub fn mbkps_system_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.mbkps.total().value() / self.mbkp.total().value()
    }

    /// Memory static-energy saving of SDEM-ON relative to MBKP (Fig. 6a).
    pub fn sdem_memory_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.sdem_on.memory_total().value() / self.mbkp.memory_total().value()
    }

    /// Memory static-energy saving of MBKPS relative to MBKP (Fig. 6a).
    pub fn mbkps_memory_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.mbkps.memory_total().value() / self.mbkp.memory_total().value()
    }

    /// Relative system-energy improvement of SDEM-ON over MBKPS
    /// (the Fig. 7 metric): `1 − E_SDEM / E_MBKPS`.
    pub fn sdem_improvement_over_mbkps(&self) -> f64 {
        1.0 - self.sdem_on.total().value() / self.mbkps.total().value()
    }
}

/// Errors a trial can produce (scheduling or simulation).
pub type TrialError = Box<dyn std::error::Error + Send + Sync>;

/// Runs one trial on `cores` cores.
///
/// SDEM-ON is metered with `WhenProfitable` memory sleeping; the MBKP
/// schedule is metered twice: `NeverSleep` (MBKP) and `AlwaysSleep`
/// (MBKPS). All three use profitable core sleeping, matching the paper's
/// focus on the memory policy difference.
///
/// # Errors
///
/// Returns an error when either scheduler finds the instance infeasible
/// (e.g. the round-robin assignment overloads a core) — callers typically
/// resample the seed.
pub fn run_trial(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
) -> Result<TrialResult, TrialError> {
    let sdem_schedule = schedule_online(tasks, platform)?;
    let mbkp_schedule = mbkp::schedule_online(tasks, platform, cores, Assignment::RoundRobin)?;

    let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
    let never = SimOptions {
        memory_policy: SleepPolicy::NeverSleep,
        ..profit
    };
    let always = SimOptions {
        memory_policy: SleepPolicy::AlwaysSleep,
        ..profit
    };

    let sdem_on = simulate_with_options(&sdem_schedule, tasks, platform, profit)?;
    let mbkp_report = simulate_with_options(&mbkp_schedule, tasks, platform, never)?;
    let mbkps_report = simulate_with_options(&mbkp_schedule, tasks, platform, profit)?;
    let mbkps_always = simulate_with_options(&mbkp_schedule, tasks, platform, always)?;

    Ok(TrialResult {
        sdem_on,
        mbkp: mbkp_report,
        mbkps: mbkps_report,
        mbkps_always,
        sdem_cores_used: sdem_schedule.cores_used(),
    })
}

/// Seed-resampling budget of one replicate: a trial draws at most this
/// many seeds from its private stream before it is recorded as failed.
pub const MAX_ATTEMPTS_PER_TRIAL: usize = 16;

/// Runs one replicate of a sweep, resampling task sets from the trial's
/// private seed stream until a feasible instance is found (bounded by
/// [`MAX_ATTEMPTS_PER_TRIAL`]). Because the stream belongs to the trial
/// alone, the result does not depend on scheduling order or thread count.
pub fn run_trial_resampling(
    make_tasks: impl Fn(u64) -> TaskSet,
    platform: &Platform,
    cores: usize,
    ctx: &TrialCtx,
) -> Option<TrialResult> {
    ctx.seeds()
        .take(MAX_ATTEMPTS_PER_TRIAL)
        .find_map(|seed| run_trial(&make_tasks(seed), platform, cores).ok())
}

/// Runs `trials` replicates in parallel (per-trial deterministic seeding,
/// so any thread count yields the same results) and returns them in
/// replicate order.
///
/// # Panics
///
/// Panics if any replicate exhausts its [`MAX_ATTEMPTS_PER_TRIAL`] retry
/// budget without a feasible seed — a sign the configuration is
/// overloaded.
pub fn run_trials(
    make_tasks: impl Fn(u64) -> TaskSet + Sync,
    platform: &Platform,
    cores: usize,
    trials: usize,
    seed_base: u64,
) -> Vec<TrialResult> {
    run_trials_on(
        &SweepRunner::new(),
        make_tasks,
        platform,
        cores,
        trials,
        seed_base,
    )
}

/// [`run_trials`] on an explicit [`SweepRunner`] (thread count, progress).
pub fn run_trials_on(
    runner: &SweepRunner,
    make_tasks: impl Fn(u64) -> TaskSet + Sync,
    platform: &Platform,
    cores: usize,
    trials: usize,
    seed_base: u64,
) -> Vec<TrialResult> {
    let outcome = runner.run(&[()], trials, seed_base, |_, ctx| {
        run_trial_resampling(&make_tasks, platform, cores, ctx)
    });
    assert_eq!(
        outcome.stats.failures, 0,
        "too many infeasible seeds for this configuration"
    );
    outcome.per_point.into_iter().next().unwrap_or_default()
}

/// Mean of a per-trial metric.
pub fn mean(results: &[TrialResult], metric: impl Fn(&TrialResult) -> f64) -> f64 {
    results.iter().map(metric).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::Time;
    use sdem_workload::synthetic::{sporadic, SyntheticConfig};

    #[test]
    fn trial_produces_sane_orderings() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
        let results = run_trials(|s| sporadic(&cfg, s), &platform, 8, 3, 100);
        for r in &results {
            // Sleeping never *increases* the pure memory bill relative to
            // never-sleeping when the policy is profitable.
            assert!(
                r.sdem_on.total().value() > 0.0
                    && r.mbkp.total().value() > 0.0
                    && r.mbkps.total().value() > 0.0
            );
            // Both schedules execute identical work; dynamic energies are
            // positive and finite.
            assert!(r.sdem_on.core_dynamic.value().is_finite());
            // SDEM-ON should not lose to MBKPS on total energy in this
            // low-utilization configuration.
            assert!(
                r.sdem_improvement_over_mbkps() > -0.05,
                "SDEM-ON unexpectedly much worse: {}",
                r.sdem_improvement_over_mbkps()
            );
        }
    }

    #[test]
    fn mean_helper() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(12, Time::from_millis(600.0));
        let results = run_trials(|s| sporadic(&cfg, s), &platform, 8, 2, 7);
        let m = mean(&results, |r| r.sdem_system_saving_vs_mbkp());
        assert!(m.is_finite());
    }
}
