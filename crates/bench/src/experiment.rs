//! One evaluation trial: schedule the same task set with SDEM-ON, MBKP and
//! MBKPS and meter all three on the same platform.

use sdem_baselines::mbkp::{self, Assignment};
use sdem_core::online::schedule_online_in;
use sdem_core::{OracleOptions, Solution};
use sdem_exec::{SweepRunner, TrialCtx};
use sdem_power::Platform;
use sdem_sim::{
    simulate_event_driven, simulate_with_options_in, EnergyReport, SimOptions, SleepPolicy,
};
use sdem_types::{TaskSet, Workspace};

/// The metered schedules of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// SDEM-ON (the paper's heuristic): memory sleeps when profitable.
    pub sdem_on: EnergyReport,
    /// MBKP: multi-core OA, memory never sleeps.
    pub mbkp: EnergyReport,
    /// MBKPS: the MBKP schedule with opportunistic memory sleeping — it
    /// sleeps whatever common idle the schedule happens to have (without
    /// shaping it), skipping gaps shorter than the break-even time. This
    /// matches the paper's observation that MBKPS degenerates to MBKP at
    /// high utilization rather than falling below it.
    pub mbkps: EnergyReport,
    /// Ablation: MBKPS pricing sleep *literally* on every gap, paying the
    /// round trip even when unprofitable.
    pub mbkps_always: EnergyReport,
    /// Peak number of cores SDEM-ON used (the paper assumes ≤ 8).
    pub sdem_cores_used: usize,
}

impl TrialResult {
    /// System-wide energy saving of SDEM-ON relative to MBKP:
    /// `1 − E_SDEM / E_MBKP`.
    pub fn sdem_system_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.sdem_on.total().value() / self.mbkp.total().value()
    }

    /// System-wide energy saving of MBKPS relative to MBKP.
    pub fn mbkps_system_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.mbkps.total().value() / self.mbkp.total().value()
    }

    /// Memory static-energy saving of SDEM-ON relative to MBKP (Fig. 6a).
    pub fn sdem_memory_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.sdem_on.memory_total().value() / self.mbkp.memory_total().value()
    }

    /// Memory static-energy saving of MBKPS relative to MBKP (Fig. 6a).
    pub fn mbkps_memory_saving_vs_mbkp(&self) -> f64 {
        1.0 - self.mbkps.memory_total().value() / self.mbkp.memory_total().value()
    }

    /// Relative system-energy improvement of SDEM-ON over MBKPS
    /// (the Fig. 7 metric): `1 − E_SDEM / E_MBKPS`.
    pub fn sdem_improvement_over_mbkps(&self) -> f64 {
        1.0 - self.sdem_on.total().value() / self.mbkps.total().value()
    }
}

/// Errors a trial can produce (scheduling or simulation).
pub type TrialError = Box<dyn std::error::Error + Send + Sync>;

/// Runs one trial on `cores` cores.
///
/// SDEM-ON is metered with `WhenProfitable` memory sleeping; the MBKP
/// schedule is metered twice: `NeverSleep` (MBKP) and `AlwaysSleep`
/// (MBKPS). All three use profitable core sleeping, matching the paper's
/// focus on the memory policy difference.
///
/// # Errors
///
/// Returns an error when either scheduler finds the instance infeasible
/// (e.g. the round-robin assignment overloads a core) — callers typically
/// resample the seed.
pub fn run_trial(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
) -> Result<TrialResult, TrialError> {
    run_trial_with_oracle(tasks, platform, cores, None)
}

/// [`run_trial`] with an optional sim-oracle cross-check.
///
/// When `oracle_tol` is set, the SDEM-ON schedule is additionally priced
/// analytically ([`Solution::from_schedule`]) and verified against the
/// interval meter, and the meter is cross-checked against the event-driven
/// engine — both within the given relative tolerance.
///
/// # Panics
///
/// Panics on oracle divergence. A diverging oracle means the analytic
/// accounting and the simulator disagree — a correctness bug, not an
/// infeasible seed — so it must not be swallowed by the resampling loop.
///
/// # Errors
///
/// Returns an error when either scheduler finds the instance infeasible;
/// see [`run_trial`].
pub fn run_trial_with_oracle(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    oracle_tol: Option<f64>,
) -> Result<TrialResult, TrialError> {
    run_trial_with_oracle_in(tasks, platform, cores, oracle_tol, &mut Workspace::new())
}

/// In-place [`run_trial_with_oracle`]: all scheduling and metering
/// scratch comes from `ws`, and both schedules are recycled back into it
/// before returning, so a sweep worker reusing one workspace runs its
/// trials without growing the heap.
///
/// # Panics
///
/// Panics on oracle divergence; see [`run_trial_with_oracle`].
///
/// # Errors
///
/// Returns an error when either scheduler finds the instance infeasible;
/// see [`run_trial`].
pub fn run_trial_with_oracle_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    oracle_tol: Option<f64>,
    ws: &mut Workspace,
) -> Result<TrialResult, TrialError> {
    let sdem_schedule = schedule_online_in(tasks, platform, ws)?;
    let mbkp_schedule = mbkp::schedule_online(tasks, platform, cores, Assignment::RoundRobin)?;

    let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
    let never = SimOptions {
        memory_policy: SleepPolicy::NeverSleep,
        ..profit
    };
    let always = SimOptions {
        memory_policy: SleepPolicy::AlwaysSleep,
        ..profit
    };

    let sdem_on = simulate_with_options_in(&sdem_schedule, tasks, platform, profit, ws)?;
    let mbkp_report = simulate_with_options_in(&mbkp_schedule, tasks, platform, never, ws)?;
    let mbkps_report = simulate_with_options_in(&mbkp_schedule, tasks, platform, profit, ws)?;
    let mbkps_always = simulate_with_options_in(&mbkp_schedule, tasks, platform, always, ws)?;

    if let Some(tol) = oracle_tol {
        // Analytic accounting vs the interval meter, through the canonical
        // Solution API.
        let analytic = Solution::from_schedule_in(sdem_schedule.clone(), platform, ws);
        if let Err(e) = analytic.verify_against_meter(
            tasks,
            platform,
            OracleOptions::with_sim(profit).with_tolerance(tol),
        ) {
            panic!("sim-oracle failure on the SDEM-ON schedule: {e}");
        }
        ws.recycle_schedule(analytic.into_schedule());
        // Interval meter vs the event-driven engine on both schedules.
        for (name, schedule, opts, metered) in [
            ("SDEM-ON/profitable", &sdem_schedule, profit, &sdem_on),
            ("MBKP/never-sleep", &mbkp_schedule, never, &mbkp_report),
            ("MBKPS/profitable", &mbkp_schedule, profit, &mbkps_report),
        ] {
            let engine = simulate_event_driven(schedule, tasks, platform, opts)?;
            let (a, b) = (engine.total().value(), metered.total().value());
            let scale = a.abs().max(b.abs());
            let relative = if scale == 0.0 {
                0.0
            } else {
                (a - b).abs() / scale
            };
            assert!(
                relative <= tol,
                "sim-oracle failure ({name}): event engine {a} J vs meter {b} J \
                 (relative divergence {relative:.3e} > tolerance {tol:.3e})"
            );
        }
    }

    let sdem_cores_used = sdem_schedule.cores_used();
    ws.recycle_schedule(sdem_schedule);
    ws.recycle_schedule(mbkp_schedule);

    Ok(TrialResult {
        sdem_on,
        mbkp: mbkp_report,
        mbkps: mbkps_report,
        mbkps_always,
        sdem_cores_used,
    })
}

/// Seed-resampling budget of one replicate: a trial draws at most this
/// many seeds from its private stream before it is recorded as failed.
pub const MAX_ATTEMPTS_PER_TRIAL: usize = 16;

/// Runs one replicate of a sweep, resampling task sets from the trial's
/// private seed stream until a feasible instance is found (bounded by
/// [`MAX_ATTEMPTS_PER_TRIAL`]). Because the stream belongs to the trial
/// alone, the result does not depend on scheduling order or thread count.
///
/// When the sweep was configured with an oracle tolerance
/// ([`sdem_exec::SweepRunner::with_oracle`], surfaced through
/// `ctx.oracle_tolerance()`), every attempted trial is cross-checked; see
/// [`run_trial_with_oracle`].
///
/// # Panics
///
/// Panics on sim-oracle divergence (a correctness bug, deliberately not
/// absorbed by the resampling loop).
pub fn run_trial_resampling(
    make_tasks: impl Fn(u64) -> TaskSet,
    platform: &Platform,
    cores: usize,
    ctx: &TrialCtx,
) -> Option<TrialResult> {
    run_trial_resampling_in(make_tasks, platform, cores, ctx, &mut Workspace::new())
}

/// In-place [`run_trial_resampling`]: every attempted trial draws its
/// scratch from `ws`, and each attempt's task set is recycled back into
/// the workspace, so a sweep worker amortizes all per-trial allocations
/// across its whole share of the sweep.
///
/// # Panics
///
/// Panics on sim-oracle divergence; see [`run_trial_resampling`].
pub fn run_trial_resampling_in(
    make_tasks: impl Fn(u64) -> TaskSet,
    platform: &Platform,
    cores: usize,
    ctx: &TrialCtx,
    ws: &mut Workspace,
) -> Option<TrialResult> {
    let oracle_tol = ctx.oracle_tolerance();
    ctx.seeds().take(MAX_ATTEMPTS_PER_TRIAL).find_map(|seed| {
        let tasks = make_tasks(seed);
        let result = run_trial_with_oracle_in(&tasks, platform, cores, oracle_tol, ws).ok();
        ws.recycle_tasks(tasks.into_tasks());
        result
    })
}

/// Runs `trials` replicates in parallel (per-trial deterministic seeding,
/// so any thread count yields the same results) and returns them in
/// replicate order.
///
/// # Panics
///
/// Panics if any replicate exhausts its [`MAX_ATTEMPTS_PER_TRIAL`] retry
/// budget without a feasible seed — a sign the configuration is
/// overloaded.
pub fn run_trials(
    make_tasks: impl Fn(u64) -> TaskSet + Sync,
    platform: &Platform,
    cores: usize,
    trials: usize,
    seed_base: u64,
) -> Vec<TrialResult> {
    run_trials_on(
        &SweepRunner::new(),
        make_tasks,
        platform,
        cores,
        trials,
        seed_base,
    )
}

/// [`run_trials`] on an explicit [`SweepRunner`] (thread count, progress).
pub fn run_trials_on(
    runner: &SweepRunner,
    make_tasks: impl Fn(u64) -> TaskSet + Sync,
    platform: &Platform,
    cores: usize,
    trials: usize,
    seed_base: u64,
) -> Vec<TrialResult> {
    let outcome = runner.run_with_state(&[()], trials, seed_base, Workspace::new, |_, ctx, ws| {
        run_trial_resampling_in(&make_tasks, platform, cores, ctx, ws)
    });
    assert_eq!(
        outcome.stats.failures, 0,
        "too many infeasible seeds for this configuration"
    );
    outcome.per_point.into_iter().next().unwrap_or_default()
}

/// Mean of a per-trial metric.
pub fn mean(results: &[TrialResult], metric: impl Fn(&TrialResult) -> f64) -> f64 {
    results.iter().map(metric).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::Time;
    use sdem_workload::synthetic::{sporadic, SyntheticConfig};

    #[test]
    fn trial_produces_sane_orderings() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
        let results = run_trials(|s| sporadic(&cfg, s), &platform, 8, 3, 100);
        for r in &results {
            // Sleeping never *increases* the pure memory bill relative to
            // never-sleeping when the policy is profitable.
            assert!(
                r.sdem_on.total().value() > 0.0
                    && r.mbkp.total().value() > 0.0
                    && r.mbkps.total().value() > 0.0
            );
            // Both schedules execute identical work; dynamic energies are
            // positive and finite.
            assert!(r.sdem_on.core_dynamic.value().is_finite());
            // SDEM-ON should not lose to MBKPS on total energy in this
            // low-utilization configuration.
            assert!(
                r.sdem_improvement_over_mbkps() > -0.05,
                "SDEM-ON unexpectedly much worse: {}",
                r.sdem_improvement_over_mbkps()
            );
        }
    }

    #[test]
    fn oracle_sweep_agrees_at_any_thread_count() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(12, Time::from_millis(600.0));
        let run = |threads: usize| {
            let runner = SweepRunner::new().with_threads(threads).with_oracle(true);
            run_trials_on(&runner, |s| sporadic(&cfg, s), &platform, 8, 3, 42)
        };
        // The oracle passes (no panic) and stays thread-count invariant.
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.sdem_on.total(), b.sdem_on.total());
        }
    }

    #[test]
    #[should_panic(expected = "sim-oracle failure")]
    fn oracle_trips_on_zero_tolerance_engine_disagreement() {
        // With tolerance 0 even benign FP summation-order differences
        // between the meter and the engine trip the oracle, proving the
        // failure path is loud rather than silently resampled.
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(24, Time::from_millis(400.0));
        for seed in 0..20 {
            let tasks = sporadic(&cfg, seed);
            let _ = run_trial_with_oracle(&tasks, &platform, 8, Some(0.0));
        }
        // If no seed trips a zero tolerance the two simulators are
        // bit-identical here; treat that as vacuous success.
        panic!("sim-oracle failure: vacuous (simulators bit-identical)");
    }

    #[test]
    fn mean_helper() {
        let platform = Platform::paper_defaults();
        let cfg = SyntheticConfig::paper(12, Time::from_millis(600.0));
        let results = run_trials(|s| sporadic(&cfg, s), &platform, 8, 2, 7);
        let m = mean(&results, |r| r.sdem_system_saving_vs_mbkp());
        assert!(m.is_finite());
    }
}
