//! Minimal dependency-free SVG line charts for the figure binaries.
//!
//! Just enough of a plotting layer to regenerate the paper's figures as
//! images: numeric axes with ticks, one polyline + markers per series, and
//! a legend. The output is plain SVG 1.1 and renders in any browser.

/// One series of a line chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, plotted in the given order.
    pub points: Vec<(f64, f64)>,
}

/// Chart frame: titles and canvas size.
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Title above the plot.
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for ChartOptions {
    fn default() -> Self {
        Self {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 640,
            height: 420,
        }
    }
}

const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 56.0;

/// Renders series as an SVG line chart.
///
/// # Panics
///
/// Panics if no series contains a finite point.
///
/// # Examples
///
/// ```
/// use sdem_bench::plot::{line_chart, ChartOptions, Series};
///
/// let svg = line_chart(
///     &[Series { label: "SDEM-ON".into(), points: vec![(2.0, 0.38), (9.0, 0.70)] }],
///     &ChartOptions { title: "Fig. 6a".into(), ..Default::default() },
/// );
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("SDEM-ON"));
/// ```
pub fn line_chart(series: &[Series], opts: &ChartOptions) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    assert!(!pts.is_empty(), "chart needs at least one finite point");

    let (x_min, x_max) = pad_range(
        pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min),
        pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max),
    );
    let (y_min, y_max) = pad_range(
        pts.iter()
            .map(|p| p.1)
            .fold(f64::INFINITY, f64::min)
            .min(0.0),
        pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max),
    );

    let (w, h) = (f64::from(opts.width), f64::from(opts.height));
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"12\">\n"
    ));
    svg.push_str(&format!(
        "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n"
    ));
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
        w / 2.0,
        escape(&opts.title)
    ));

    // Axes frame + ticks.
    svg.push_str(&format!(
        "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{plot_w}\" height=\"{plot_h}\" \
         fill=\"none\" stroke=\"#333\"/>\n"
    ));
    for k in 0..=5 {
        let f = f64::from(k) / 5.0;
        let xv = x_min + f * (x_max - x_min);
        let yv = y_min + f * (y_max - y_min);
        let xp = sx(xv);
        let yp = sy(yv);
        svg.push_str(&format!(
            "<line x1=\"{xp:.1}\" y1=\"{0:.1}\" x2=\"{xp:.1}\" y2=\"{1:.1}\" stroke=\"#333\"/>\n",
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 5.0
        ));
        svg.push_str(&format!(
            "<text x=\"{xp:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            MARGIN_T + plot_h + 20.0,
            fmt_tick(xv)
        ));
        svg.push_str(&format!(
            "<line x1=\"{0:.1}\" y1=\"{yp:.1}\" x2=\"{1:.1}\" y2=\"{yp:.1}\" stroke=\"#333\"/>\n",
            MARGIN_L - 5.0,
            MARGIN_L
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            MARGIN_L - 9.0,
            yp + 4.0,
            fmt_tick(yv)
        ));
        // Light horizontal gridline.
        svg.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{yp:.1}\" x2=\"{:.1}\" y2=\"{yp:.1}\" \
             stroke=\"#ddd\" stroke-dasharray=\"3,3\"/>\n",
            MARGIN_L + plot_w
        ));
    }
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
        MARGIN_L + plot_w / 2.0,
        h - 12.0,
        escape(&opts.x_label)
    ));
    svg.push_str(&format!(
        "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">{}</text>\n",
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(&opts.y_label)
    ));

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            path.join(" ")
        ));
        for &(x, y) in &s.points {
            if x.is_finite() && y.is_finite() {
                svg.push_str(&format!(
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"/>\n",
                    sx(x),
                    sy(y)
                ));
            }
        }
        // Legend entry.
        let ly = MARGIN_T + 16.0 + 18.0 * i as f64;
        let lx = MARGIN_L + plot_w - 150.0;
        svg.push_str(&format!(
            "<line x1=\"{lx}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" \
             stroke-width=\"2\"/>\n",
            lx + 22.0
        ));
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{}\">{}</text>\n",
            lx + 28.0,
            ly + 4.0,
            escape(&s.label)
        ));
    }

    svg.push_str("</svg>\n");
    svg
}

fn pad_range(lo: f64, hi: f64) -> (f64, f64) {
    if (hi - lo).abs() < 1e-12 {
        (lo - 1.0, hi + 1.0)
    } else {
        let pad = (hi - lo) * 0.05;
        (lo - pad, hi + pad)
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                label: "SDEM-ON".into(),
                points: vec![(2.0, 0.38), (5.0, 0.58), (9.0, 0.70)],
            },
            Series {
                label: "MBKPS".into(),
                points: vec![(2.0, 0.17), (5.0, 0.46), (9.0, 0.63)],
            },
        ]
    }

    #[test]
    fn chart_contains_frame_series_and_legend() {
        let svg = line_chart(
            &sample(),
            &ChartOptions {
                title: "Fig. 6a — memory saving".into(),
                x_label: "U".into(),
                y_label: "saving".into(),
                ..Default::default()
            },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.matches("<circle").count() >= 6);
        assert!(svg.contains("SDEM-ON") && svg.contains("MBKPS"));
        assert!(svg.contains("Fig. 6a"));
        // Balanced tags (rough well-formedness).
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn special_characters_are_escaped() {
        let svg = line_chart(
            &[Series {
                label: "a < b & c".into(),
                points: vec![(0.0, 1.0), (1.0, 2.0)],
            }],
            &ChartOptions::default(),
        );
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn constant_series_get_padded_range() {
        let svg = line_chart(
            &[Series {
                label: "flat".into(),
                points: vec![(0.0, 5.0), (1.0, 5.0)],
            }],
            &ChartOptions::default(),
        );
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "at least one finite point")]
    fn rejects_empty_chart() {
        let _ = line_chart(&[], &ChartOptions::default());
    }
}
