//! Small summary statistics for experiment aggregation.

/// Summary of a sample: mean, sample standard deviation, extremes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for `n < 2`).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Half-width of a ~95 % normal confidence interval for the mean
    /// (`1.96·s/√n`; 0 for `n < 2`).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Summarizes a non-empty sample.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty(), "cannot summarize an empty sample");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    Summary {
        mean,
        std_dev: var.sqrt(),
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        n,
    }
}

/// Percentile by linear interpolation (`q` in `[0, 1]`).
///
/// # Panics
///
/// Panics if `xs` is empty or `q` outside `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(
        !xs.is_empty(),
        "cannot take a percentile of an empty sample"
    );
    assert!((0.0..=1.0).contains(&q), "q must be within [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 1e-3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn single_observation() {
        let s = summarize(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = summarize(&[]);
    }
}
