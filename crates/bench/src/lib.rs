//! Experiment harness regenerating every figure of the paper's evaluation
//! (§8): Fig. 6a/6b (DSPstone benchmarks over utilization `U`), Fig. 7a
//! (`α_m × x` sweep) and Fig. 7b (`ξ_m × x` sweep), plus the Table 4
//! parameter grid the sweeps read from `sdem-workload::paper`.
//!
//! Binaries:
//!
//! * `cargo run -p sdem-bench --release --bin fig6` — both panels of Fig. 6;
//! * `cargo run -p sdem-bench --release --bin fig7a`;
//! * `cargo run -p sdem-bench --release --bin fig7b`.
//!
//! Every binary fans its trials across worker threads through
//! [`sdem_exec::SweepRunner`]; set `SDEM_THREADS` to bound the worker
//! count (`SDEM_THREADS=1` forces the serial path, which produces
//! bit-identical output).
//!
//! Plain benches (`cargo bench -p sdem-bench`) time the algorithms and
//! the harness via [`microbench`]; the ablation benches compare design
//! alternatives called out in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod microbench;
pub mod plot;
pub mod stats;

/// Builds a [`sdem_exec::SweepRunner`] honouring the `SDEM_THREADS`
/// environment variable (unset or `0` = all hardware threads).
pub fn runner_from_env() -> sdem_exec::SweepRunner {
    let threads = std::env::var("SDEM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);
    sdem_exec::SweepRunner::new().with_threads(threads)
}
