//! Experiment harness regenerating every figure of the paper's evaluation
//! (§8): Fig. 6a/6b (DSPstone benchmarks over utilization `U`), Fig. 7a
//! (`α_m × x` sweep) and Fig. 7b (`ξ_m × x` sweep), plus the Table 4
//! parameter grid the sweeps read from `sdem-workload::paper`.
//!
//! Binaries:
//!
//! * `cargo run -p sdem-bench --release --bin fig6` — both panels of Fig. 6;
//! * `cargo run -p sdem-bench --release --bin fig7a`;
//! * `cargo run -p sdem-bench --release --bin fig7b`.
//!
//! Criterion benches (`cargo bench -p sdem-bench`) time the algorithms and
//! the harness; the ablation benches compare design alternatives called out
//! in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod plot;
pub mod stats;
